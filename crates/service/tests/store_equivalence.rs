//! Equivalence and stress tests for the sharded concurrent store.
//!
//! 1. A 1-shard [`ShardedStore`] driven single-threaded is **bit-identical**
//!    to a plain [`LoadVector`] on random placement/release op streams:
//!    same RNG consumption, same chosen bins, same loads, same canonical
//!    histogram, same cached observables.
//! 2. A multi-thread stress run asserts the merged-histogram invariants
//!    (histogram sums to `n`, total balls conserved, per-shard
//!    `check_invariants`) after concurrent placements and releases —
//!    including requests whose probes span every shard, exercising the
//!    canonical lock order.
//! 3. The **batched open-loop pipeline** is pinned to the per-request
//!    [`PlacementService`] path: replaying the identical request stream
//!    (same traffic schedule, same per-request RNGs) one `place` call at
//!    a time on a single thread reproduces the batched run's final
//!    histogram bit for bit, with balls conserved on both sides.

use kdchoice_core::{BinStore, LoadVector};
use kdchoice_prng::sample::UniformBin;
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};
use kdchoice_service::{
    run_open_loop, OpenLoopConfig, PipelineMode, Placement, PlacementService, ShardedStore,
    TrafficSchedule,
};
use proptest::prelude::*;
use rand::RngCore;

/// The reference (k,d)-placement kernel on a plain `LoadVector`,
/// consuming the RNG exactly like `ShardedStore::place_k_least`: probes
/// sorted, one tie key per tentative slot in sorted order, `k` smallest
/// `(height, key)` slots committed in selection order.
fn reference_place<R: RngCore>(
    state: &mut LoadVector,
    probes: &[usize],
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut sorted = probes.to_vec();
    sorted.sort_unstable();
    let mut slots: Vec<(u32, u64, usize)> = Vec::with_capacity(sorted.len());
    let mut i = 0;
    while i < sorted.len() {
        let bin = sorted[i];
        let base = state.load(bin);
        let mut occ = 0u32;
        while i < sorted.len() && sorted[i] == bin {
            occ += 1;
            slots.push((base + occ, rng.next_u64(), bin));
            i += 1;
        }
    }
    if k < slots.len() {
        slots.select_nth_unstable_by(k - 1, |a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    }
    slots[..k]
        .iter()
        .map(|&(_, _, bin)| {
            state.add_ball(bin);
            bin
        })
        .collect()
}

/// Asserts every observable of the 1-shard store matches the reference
/// `LoadVector` bit for bit.
fn assert_states_match(store: &ShardedStore, reference: &LoadVector) {
    let mut loads = Vec::new();
    store.copy_loads_into(&mut loads);
    assert_eq!(loads, reference.loads(), "per-bin loads diverged");
    assert_eq!(
        store.histogram(),
        reference.load_histogram(),
        "canonical histogram diverged"
    );
    assert_eq!(BinStore::max_load(store), reference.max_load());
    assert_eq!(BinStore::total_balls(store), reference.total_balls());
    for y in 0..=reference.max_load() + 1 {
        assert_eq!(BinStore::nu(store, y), reference.nu(y), "nu({y}) diverged");
    }
    assert_eq!(BinStore::gap(store), reference.gap());
    assert!(reference.check_invariants());
    assert!(store.check_invariants());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Random op streams: placements with random (k, d) and interleaved
    /// releases of the oldest live placement. The 1-shard store and the
    /// reference consume identically-seeded RNGs; every op must leave
    /// both sides in the same state and pick the same bins.
    #[test]
    fn one_shard_store_is_bit_identical_to_load_vector(
        seed in any::<u64>(),
        n in 1usize..50,
        ops in prop::collection::vec((0u8..4, 1usize..9), 1..80),
    ) {
        let store = ShardedStore::new(n, 1);
        let mut reference = LoadVector::new(n);
        let mut rng_store = Xoshiro256PlusPlus::from_u64(seed);
        let mut rng_ref = Xoshiro256PlusPlus::from_u64(seed);
        let sampler = UniformBin::new(n);
        let mut live: Vec<Placement> = Vec::new();

        for (kind, size) in ops {
            if kind == 0 && !live.is_empty() {
                let placement = live.remove(0);
                store.release(&placement.bins);
                for &bin in &placement.bins {
                    reference.remove_ball(bin);
                }
            } else {
                let d = size; // 1..9
                let k = 1 + (usize::from(kind) % d);
                prop_assume!(k <= d);
                // One probe stream, replayed for both sides.
                let probes: Vec<usize> =
                    (0..d).map(|_| sampler.sample(&mut rng_store)).collect();
                let probes_ref: Vec<usize> =
                    (0..d).map(|_| sampler.sample(&mut rng_ref)).collect();
                prop_assert_eq!(&probes, &probes_ref, "probe streams must agree");
                let placement = store.place_k_least(&probes, k, &mut rng_store);
                let chosen = reference_place(&mut reference, &probes, k, &mut rng_ref);
                prop_assert_eq!(&placement.bins, &chosen, "chosen bins diverged");
                live.push(placement);
            }
            assert_states_match(&store, &reference);
        }
    }
}

/// Replays an open-loop schedule through the per-request
/// [`PlacementService`] path (`place`/`release`, one lock round per
/// request) and returns the final store.
fn replay_per_request(config: &OpenLoopConfig) -> ShardedStore {
    let schedule = TrafficSchedule::generate(&config.traffic, config.traffic_seed()).unwrap();
    let service = PlacementService::new(
        ShardedStore::new(config.bins, config.shards),
        config.k,
        config.d,
    )
    .unwrap();
    let mut placements: Vec<Option<Placement>> = vec![None; schedule.timings.len()];
    for t in 0..config.traffic.ticks as usize {
        for &id in &schedule.departures[t] {
            let placement = placements[id as usize]
                .as_ref()
                .expect("departure precedes commit");
            service.release(placement);
        }
        let (start, end) = schedule.commit_ranges[t];
        for id in start..end {
            let mut rng = Xoshiro256PlusPlus::from_u64(config.request_seed(id));
            placements[id as usize] = Some(service.place(&mut rng));
        }
    }
    service.into_store()
}

/// The batched pipeline on one thread is bit-identical to serving the
/// same request stream through `PlacementService::place`/`release`.
#[test]
fn batched_pipeline_matches_per_request_placement_service() {
    for (lambda, max_batch, seed) in [(0.7, 5, 0x5EED_0001u64), (1.2, 32, 0x5EED_0002)] {
        let mut config = OpenLoopConfig::at_lambda(96, 2, 4, lambda, 8.0, 150, seed);
        config.shards = 8;
        config.threads = 1;
        config.mode = PipelineMode::Batched;
        config.max_batch = max_batch;
        let report = run_open_loop(&config);
        assert!(report.conserved, "λ={lambda}");

        let store = replay_per_request(&config);
        assert_eq!(
            store.histogram(),
            report.final_histogram,
            "λ={lambda}: final histogram diverged"
        );
        assert_eq!(store.total_balls(), report.live_balls, "λ={lambda}");
        assert_eq!(
            store.total_balls(),
            report.balls_placed - report.balls_released,
            "λ={lambda}: ball conservation"
        );
        assert_eq!(
            u64::from(store.max_load()),
            u64::from(report.final_max_load)
        );
        assert!(store.check_invariants());
    }
}

/// Per-thread tallies from the stress run.
struct ClientTally {
    placed: u64,
    released: u64,
}

#[test]
fn concurrent_stress_conserves_balls_and_invariants() {
    let n = 509; // prime: every shard gets an uneven bin count
    let shards = 8;
    let threads = 8;
    let requests = 3_000;
    let store = ShardedStore::new(n, shards);
    let sampler = UniformBin::new(n);

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    let mut rng = Xoshiro256PlusPlus::from_u64(derive_seed(0xC0FFEE, t as u64));
                    let mut live: Vec<Placement> = Vec::new();
                    let mut tally = ClientTally {
                        placed: 0,
                        released: 0,
                    };
                    for i in 0..requests {
                        // Vary the request shape: k in 1..=3, d in k..=k+5;
                        // every 97th request probes one bin per shard so
                        // the full canonical lock chain is exercised under
                        // contention.
                        let k = 1 + i % 3;
                        let probes: Vec<usize> = if i % 97 == 0 {
                            (0..shards).collect()
                        } else {
                            let d = k + 1 + i % 5;
                            (0..d).map(|_| sampler.sample(&mut rng)).collect()
                        };
                        let k = k.min(probes.len());
                        let placement = store.place_k_least(&probes, k, &mut rng);
                        tally.placed += placement.bins.len() as u64;
                        live.push(placement);
                        if live.len() > 32 {
                            let oldest = live.remove(0);
                            tally.released += oldest.bins.len() as u64;
                            store.release(&oldest.bins);
                        }
                    }
                    // Drain half of what's left so the final state mixes
                    // live and released placements.
                    for placement in live.drain(..live.len() / 2) {
                        tally.released += placement.bins.len() as u64;
                        store.release(&placement.bins);
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress client must not panic"))
            .collect()
    });

    let placed: u64 = tallies.iter().map(|t| t.placed).sum();
    let released: u64 = tallies.iter().map(|t| t.released).sum();
    assert!(placed > 0 && released > 0);

    // Merged-histogram invariants after the dust settles.
    assert!(
        store.check_invariants(),
        "shard or merged invariants broken"
    );
    let histogram = store.histogram();
    assert_eq!(
        histogram.iter().sum::<u64>(),
        n as u64,
        "histogram must sum to n"
    );
    assert_eq!(
        store.total_balls(),
        placed - released,
        "total balls must be conserved"
    );
    let balls_from_histogram: u64 = histogram
        .iter()
        .enumerate()
        .map(|(load, &count)| count * load as u64)
        .sum();
    assert_eq!(balls_from_histogram, placed - released);
    assert_eq!(store.nu(0), n as u64);
    assert!(store.max_load() > 0);
}
