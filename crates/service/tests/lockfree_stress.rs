//! Concurrency oracle for the lock-free CAS-bins backend: 8-thread
//! place/release storms against [`AtomicStore`] with an *external*
//! ground truth.
//!
//! Every placement's winning bins are returned to the calling thread,
//! so after the storm the main thread knows exactly which balls are
//! live and where they were put. That turns conservation from a
//! counter identity into a per-bin oracle: the store's counters must
//! equal the ball-by-ball reconstruction bin for bin. A torn write, a
//! lost CAS rollback, or a negative (wrapped) counter cannot hide from
//! that comparison.
//!
//! Bin counts are prime (509, 1021) so no power-of-two alignment can
//! mask an indexing error, and the probe pattern deliberately piles
//! onto a small hot set to force CAS collisions. Run these in release
//! mode (CI does) to get real interleavings rather than debug-build
//! serialization.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use kdchoice_core::BinStore;
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};
use kdchoice_service::{AtomicStore, PlaceScratch, PLACE_RETRY_LIMIT};
use rand::RngCore;

const THREADS: usize = 8;

/// One thread's contribution to the storm: place `rounds` requests
/// (k of d hot-skewed probes each), holding at most `window` placements
/// and releasing the oldest beyond that. Returns the bins of every
/// still-live ball plus the thread's (places, releases) totals.
#[allow(clippy::too_many_arguments)]
fn storm_thread(
    store: &AtomicStore,
    n: usize,
    k: usize,
    d: usize,
    rounds: usize,
    window: usize,
    hot_bins: usize,
    seed: u64,
) -> (Vec<usize>, u64, u64) {
    let mut rng = Xoshiro256PlusPlus::from_u64(seed);
    let mut scratch = PlaceScratch::new();
    let mut probes = vec![0usize; d];
    let mut held: std::collections::VecDeque<Vec<usize>> = std::collections::VecDeque::new();
    let (mut places, mut releases) = (0u64, 0u64);
    for round in 0..rounds {
        for p in probes.iter_mut() {
            // Every other round probes only the hot set: maximal CAS
            // contention on a handful of bins shared by all 8 threads.
            let universe = if round % 2 == 0 { hot_bins } else { n };
            *p = (rng.next_u64() % universe as u64) as usize;
        }
        let placement = store.place_with(&probes, k, &mut rng, &mut scratch);
        assert_eq!(placement.bins.len(), k);
        places += 1;
        held.push_back(placement.bins);
        if held.len() > window {
            let oldest = held.pop_front().unwrap();
            store.release(&oldest);
            releases += 1;
        }
    }
    let live: Vec<usize> = held.into_iter().flatten().collect();
    (live, places, releases)
}

/// Rebuilds the expected per-bin load vector from the live balls every
/// thread reported and asserts the store matches it exactly, along
/// with the histogram, totals, invariants, and the retry-count bound.
fn assert_storm_oracle(store: &AtomicStore, n: usize, k: usize, live: &[usize], ops: u64) {
    // Per-bin oracle: the counters must equal the ball-by-ball truth.
    let mut expected = vec![0u32; n];
    for &bin in live {
        expected[bin] += 1;
    }
    let mut actual = Vec::new();
    store.copy_loads_into(&mut actual);
    assert_eq!(actual, expected, "per-bin loads diverged from ground truth");

    // Conservation and aggregate observables over the same truth.
    assert_eq!(store.total_balls(), live.len() as u64);
    assert_eq!(live.len() % k, 0, "live balls must come in k-tuples");
    let max = *expected.iter().max().unwrap();
    assert_eq!(store.max_load(), max);
    assert!(
        max < 1 << 20,
        "implausible max load: torn or wrapped counter"
    );

    // Merged histogram agrees with the ground-truth histogram.
    let mut expected_hist = vec![0u64; max as usize + 1];
    for &load in &expected {
        expected_hist[load as usize] += 1;
    }
    assert_eq!(store.histogram(), expected_hist);

    // Quiescent invariants: no in-flight ops, consistent scan, counter
    // sums agree with the histogram.
    assert!(store.check_invariants(), "quiescent invariants failed");

    // CAS retries are bounded: a placement retries at most
    // PLACE_RETRY_LIMIT times before the unconditional fallback, and a
    // release retries only while other ops commit under it. The storm's
    // total lost races can never exceed the per-op ceiling summed over
    // every operation.
    let lost = store.lost_races();
    assert!(
        lost <= ops * PLACE_RETRY_LIMIT as u64,
        "lost_races {lost} exceeds {} ops x retry limit {PLACE_RETRY_LIMIT}",
        ops
    );
    assert!(
        store.fallback_commits() <= ops,
        "more fallback commits than operations"
    );
}

/// 8 threads, prime bin count, hot-set contention, windowed releases:
/// the final state must match the external ball-by-ball oracle.
#[test]
fn eight_thread_storm_matches_ball_by_ball_oracle() {
    let (n, k, d) = (509usize, 2usize, 4usize);
    let store = AtomicStore::new(n);
    let (rounds, window, hot) = (6000usize, 64usize, 7usize);
    let results: Vec<(Vec<usize>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    storm_thread(
                        store,
                        n,
                        k,
                        d,
                        rounds,
                        window,
                        hot,
                        derive_seed(0x10CF_0001, t as u64),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut live = Vec::new();
    let (mut places, mut releases) = (0u64, 0u64);
    for (bins, p, r) in results {
        live.extend(bins);
        places += p;
        releases += r;
    }
    assert_eq!(places, (THREADS * rounds) as u64);
    assert_eq!(live.len() as u64, (places - releases) * k as u64);
    assert_storm_oracle(&store, n, k, &live, places + releases);
}

/// Releasing every live ball drains the store to exactly zero — the
/// guarded CAS decrement neither loses balls nor invents them, even
/// when the releases themselves race 8-wide.
#[test]
fn racing_full_drain_leaves_an_empty_store() {
    let (n, k, d) = (1021usize, 3usize, 6usize);
    let store = AtomicStore::new(n);
    let results: Vec<(Vec<usize>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    storm_thread(
                        store,
                        n,
                        k,
                        d,
                        3000,
                        32,
                        5,
                        derive_seed(0x10CF_0002, t as u64),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Drain the survivors with racing releases (one thread per batch).
    std::thread::scope(|scope| {
        for (bins, _, _) in &results {
            let store = &store;
            scope.spawn(move || {
                for ball in bins.chunks(k) {
                    store.release(ball);
                }
            });
        }
    });
    assert_eq!(store.total_balls(), 0, "drained store still holds balls");
    assert_eq!(store.max_load(), 0);
    let mut loads = Vec::new();
    store.copy_loads_into(&mut loads);
    assert!(loads.iter().all(|&l| l == 0), "residual per-bin load");
    assert_eq!(store.histogram(), vec![n as u64]);
    assert!(store.check_invariants());
}

/// A reader thread hammering `stamped_snapshot` during the storm never
/// observes a torn state: generations are monotone, loads are bounded
/// by the balls placed so far, and a consistent snapshot's total is a
/// plausible live-ball count.
#[test]
fn concurrent_snapshots_are_monotone_and_never_torn() {
    let (n, k, d) = (509usize, 2usize, 4usize);
    let store = AtomicStore::new(n);
    let done = AtomicBool::new(false);
    let placed_ceiling = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = &store;
            let ceiling = &placed_ceiling;
            scope.spawn(move || {
                let mut rng = Xoshiro256PlusPlus::from_u64(derive_seed(0x10CF_0003, t as u64));
                let mut scratch = PlaceScratch::new();
                let mut probes = vec![0usize; d];
                for _ in 0..2000 {
                    for p in probes.iter_mut() {
                        *p = (rng.next_u64() % n as u64) as usize;
                    }
                    // Advertise the upper bound *before* committing so a
                    // reader can never see more balls than the ceiling.
                    ceiling.fetch_add(k as u64, Ordering::SeqCst);
                    store.place_with(&probes, k, &mut rng, &mut scratch);
                }
            });
        }
        let store = &store;
        let done = &done;
        let ceiling = &placed_ceiling;
        let reader = scope.spawn(move || {
            let mut last_generation = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = store.stamped_snapshot();
                assert!(
                    snap.generation >= last_generation,
                    "generation went backwards: {} -> {}",
                    last_generation,
                    snap.generation
                );
                last_generation = snap.generation;
                assert_eq!(snap.loads.len(), n);
                let bound = ceiling.load(Ordering::SeqCst);
                for &load in &snap.loads {
                    assert!(
                        (load as u64) <= bound,
                        "torn read: bin load {load} exceeds balls placed {bound}"
                    );
                }
                if snap.consistent {
                    let total: u64 = snap.loads.iter().map(|&l| l as u64).sum();
                    assert!(total <= bound, "consistent snapshot over-counts");
                }
            }
        });
        // Workers are the scope's other children; wait for them by
        // joining everything except the reader, then stop the reader.
        // (Scoped threads join implicitly; the flag just ends the loop.)
        while store.total_balls() < (THREADS * 2000 * k) as u64 {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();
    });
    // Quiescent now: the final snapshot must be consistent and exact.
    let snap = store.stamped_snapshot();
    assert!(snap.consistent);
    let total: u64 = snap.loads.iter().map(|&l| l as u64).sum();
    assert_eq!(total, (THREADS * 2000 * k) as u64);
    assert!(store.check_invariants());
}
