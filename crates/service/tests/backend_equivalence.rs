//! Cross-backend equivalence: the shared-nothing `OwnedShardEngine`
//! and the lock-free `AtomicStore` against the lock-striped
//! `ShardedStore`, driven through the same public entry points. This is
//! the repo's standard admission harness for any concurrent store.
//!
//! The contract under test (see `kdchoice_service::engine` and
//! `kdchoice_service::AtomicStore`):
//!
//! * **Single thread** (synchronous snapshots for the owned backend; no
//!   contention, hence no CAS failures, for the lock-free one) — both
//!   alternative backends are **bit-identical** to the striped backend:
//!   same probes, same tie keys, same winners, same final histogram,
//!   same sampled time series. Locked by a proptest over random
//!   open-loop traffic and by deterministic closed-loop runs.
//! * **Any thread count** — the open-loop *event stream* (arrivals,
//!   commits, departures, every latency statistic) is schedule-driven
//!   and therefore identical across backends; only the load shape may
//!   drift once decisions read stale or raced load values.
//! * **Concurrency safety** — 8-thread runs on both alternative
//!   backends conserve balls and pass their invariant checks
//!   (merged-histogram / snapshot-vs-truth for the owned engine;
//!   in-flight-op / consistent-scan / counter-sum for the lock-free
//!   store); `conserved` reports the outcome.

use kdchoice_core::StoreKind;
use kdchoice_service::{
    run_open_loop, run_service_workload, OpenLoopConfig, ServiceBackend, ServiceWorkloadConfig,
};
use proptest::prelude::*;

/// The two backends that must reproduce the striped reference bit for
/// bit at one thread.
const CHALLENGERS: [ServiceBackend; 2] = [ServiceBackend::SharedNothing, ServiceBackend::LockFree];

/// Runs `config` on all three backends (single thread, synchronous
/// snapshots) and asserts every deterministic observable matches the
/// striped reference bit for bit.
fn assert_backends_match(mut config: OpenLoopConfig, label: &str) {
    config.threads = 1;
    config.snapshot_refresh = 1;
    config.backend = ServiceBackend::Striped;
    let striped = run_open_loop(&config);
    assert!(striped.conserved, "{label}: striped run must conserve");
    for backend in CHALLENGERS {
        config.backend = backend;
        let other = run_open_loop(&config);
        let label = format!("{label} [{}]", backend.name());

        assert!(other.conserved, "{label}: run must conserve");
        assert_eq!(
            striped.final_histogram, other.final_histogram,
            "{label}: final load histograms diverged"
        );
        assert_eq!(
            striped.series, other.series,
            "{label}: time series diverged"
        );
        assert_eq!(striped.final_max_load, other.final_max_load, "{label}");
        assert_eq!(striped.live_balls, other.live_balls, "{label}");
        assert_eq!(striped.balls_placed, other.balls_placed, "{label}");
        assert_eq!(striped.balls_released, other.balls_released, "{label}");
        assert_eq!(
            striped.requests_committed, other.requests_committed,
            "{label}"
        );
        assert_eq!(striped.backlog, other.backlog, "{label}");
        assert_eq!(striped.latency_p50, other.latency_p50, "{label}");
        assert_eq!(striped.latency_p99, other.latency_p99, "{label}");
        assert_eq!(striped.latency_max, other.latency_max, "{label}");
        assert_eq!(striped.final_gap, other.final_gap, "{label}");
        assert_eq!(striped.final_util_gap, other.final_util_gap, "{label}");
        assert_eq!(striped.steady_gap_mean, other.steady_gap_mean, "{label}");
        assert_eq!(striped.total_capacity, other.total_capacity, "{label}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Random place/release streams (Poisson arrivals, exponential
    /// lifetimes — every request is a place, every departure a release)
    /// cannot tell the backends apart at `threads = 1`, `refresh = 1`.
    #[test]
    fn owned_backend_is_bit_identical_to_striped_single_thread(
        bins in 16usize..160,
        k in 1usize..=3,
        extra_d in 0usize..=3,
        lambda in 0.5f64..1.4,
        seed in any::<u64>(),
    ) {
        let d = k + extra_d.max(if k == 1 { 1 } else { 0 });
        let config = OpenLoopConfig::at_lambda(bins, k, d, lambda, 8.0, 120, seed);
        assert_backends_match(config, "proptest");
    }
}

/// The heterogeneous path — Zipf-weighted probes over two-tier
/// capacities — goes through the same snapshot-read decision kernel, so
/// it must be bit-identical too.
#[test]
fn weighted_probes_and_capacities_match_across_backends() {
    let bins = 128;
    let mut config = OpenLoopConfig::at_lambda(bins, 2, 4, 0.9, 16.0, 300, 0xE0_1111);
    config.probes = kdchoice_core::ProbeDistribution::zipf(bins, 1.1).unwrap();
    config.capacities = Some(kdchoice_core::two_tier_capacities(bins, 10, 10));
    config.sample_every = 8;
    assert_backends_match(config, "zipf + two_tier");
}

/// Staleness changes *decisions*, not the event stream: at `refresh >
/// 1` the owned backend must still conserve balls and commit the exact
/// schedule-driven request counts, even though the load shape is
/// allowed to drift from the striped run.
#[test]
fn stale_snapshots_preserve_the_event_stream() {
    let mut config = OpenLoopConfig::at_lambda(256, 2, 4, 0.9, 16.0, 400, 0xE0_2222);
    config.threads = 1;
    config.backend = ServiceBackend::Striped;
    let striped = run_open_loop(&config);
    config.backend = ServiceBackend::SharedNothing;
    config.snapshot_refresh = 64;
    let owned = run_open_loop(&config);
    assert!(owned.conserved);
    assert_eq!(striped.requests_committed, owned.requests_committed);
    assert_eq!(striped.balls_placed, owned.balls_placed);
    assert_eq!(striped.balls_released, owned.balls_released);
    assert_eq!(striped.live_balls, owned.live_balls);
    assert_eq!(striped.latency_p99, owned.latency_p99);
}

/// Closed-loop equivalence: one client thread issues the identical
/// probe/tie-key stream to all three backends, so the final merged load
/// state must match exactly — including through the release window.
#[test]
fn closed_loop_single_client_matches_across_backends() {
    for window in [0usize, 16] {
        let mut config = ServiceWorkloadConfig {
            bins: 512,
            k: 2,
            d: 4,
            shards: 8,
            threads: 1,
            requests_per_thread: 4000,
            window,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            dims: 1,
            objective: kdchoice_core::PlacementObjective::Scalar,
            demand: kdchoice_prng::demand::DemandDistribution::Unit,
            seed: 0xE0_3333,
        };
        let striped = run_service_workload(&config);
        assert!(striped.conserved, "window={window}");
        for backend in CHALLENGERS {
            config.backend = backend;
            let other = run_service_workload(&config);
            let label = format!("window={window} [{}]", backend.name());
            assert!(other.conserved, "{label}");
            assert_eq!(striped.live_balls, other.live_balls, "{label}");
            assert_eq!(striped.balls_released, other.balls_released, "{label}");
            assert_eq!(striped.max_load, other.max_load, "{label}");
            assert_eq!(striped.gap, other.gap, "{label}");
            assert_eq!(striped.nu1, other.nu1, "{label}");
        }
    }
}

/// A packed decision view must not break single-thread bit-identity:
/// both the owned backend (packed published snapshot) and the lock-free
/// backend (clamped read of its exact counters) publish `min(load,
/// ceiling)` to the decision kernel, and at these loads the ceiling is
/// never reached, so the striped/exact stream is reproduced bit for
/// bit.
#[test]
fn packed_store_keeps_single_thread_bit_identity() {
    let mut config = OpenLoopConfig::at_lambda(192, 2, 4, 0.9, 12.0, 240, 0xE0_7777);
    config.store = StoreKind::Packed8;
    assert_backends_match(config, "packed8");
}

/// 8-thread stress on the owned engine, closed loop with a release
/// window: `conserved` folds in ball conservation, per-shard
/// `check_invariants`, the merged-histogram checks, and the
/// snapshot-equals-truth assertion performed after the final flush.
#[test]
fn owned_engine_8_thread_stress_conserves_and_keeps_invariants() {
    let config = ServiceWorkloadConfig {
        bins: 509, // prime: uneven ownership slices
        k: 2,
        d: 4,
        shards: 8, // ignored by the owned backend
        threads: 8,
        requests_per_thread: 3000,
        window: 32,
        backend: ServiceBackend::SharedNothing,
        snapshot_refresh: 16,
        store: StoreKind::Exact,
        dims: 1,
        objective: kdchoice_core::PlacementObjective::Scalar,
        demand: kdchoice_prng::demand::DemandDistribution::Unit,
        seed: 0xE0_4444,
    };
    let report = run_service_workload(&config);
    assert!(
        report.conserved,
        "owned 8-thread run lost balls or invariants"
    );
    assert_eq!(report.placements, 8 * 3000);
    assert_eq!(report.balls_placed, 8 * 3000 * 2);
    // Every client holds exactly `window` placements at the end.
    assert_eq!(
        report.live_balls,
        8 * 32 * 2,
        "release window must bound live placements"
    );
}

/// Regression: per-tick cross-worker traffic far above the SPSC ring
/// capacity (256). A worker that finishes its pushes must keep draining
/// — not park at a barrier — or a neighbour stuck in the full-ring
/// submit path waits forever (this deadlocked before the
/// drain-while-waiting rendezvous; bins >= 2^12 at this λ/μ is exactly
/// where a tick's traffic first overflows a ring).
#[test]
fn ring_overflow_under_heavy_per_tick_traffic_terminates_and_conserves() {
    // ~460 arrivals (≈ 920 placed + 920 released balls) per tick across
    // 2 workers: several ring-fills per (producer, consumer) pair.
    let mut config = OpenLoopConfig::at_lambda(1 << 13, 2, 4, 0.9, 8.0, 60, 0xE0_6666);
    config.sample_every = 8;
    config.backend = ServiceBackend::SharedNothing;
    config.snapshot_refresh = 64;
    config.threads = 1;
    let one = run_open_loop(&config);
    for threads in [2, 8] {
        config.threads = threads;
        let many = run_open_loop(&config);
        assert!(many.conserved, "{threads} threads");
        assert_eq!(one.balls_placed, many.balls_placed, "{threads} threads");
        assert_eq!(one.balls_released, many.balls_released, "{threads} threads");
        assert_eq!(one.live_balls, many.live_balls, "{threads} threads");
    }
}

/// 8-thread open-loop run on the owned backend: the event stream (and
/// with it conservation totals and latency statistics) is pinned to the
/// schedule regardless of threading.
#[test]
fn owned_open_loop_8_threads_conserves_and_pins_the_event_stream() {
    let mut config = OpenLoopConfig::at_lambda(512, 2, 4, 0.9, 8.0, 300, 0xE0_5555);
    config.sample_every = 16;
    config.backend = ServiceBackend::SharedNothing;
    config.snapshot_refresh = 32;
    config.threads = 1;
    let one = run_open_loop(&config);
    config.threads = 8;
    let eight = run_open_loop(&config);
    assert!(one.conserved && eight.conserved);
    assert_eq!(one.requests_committed, eight.requests_committed);
    assert_eq!(one.backlog, eight.backlog);
    assert_eq!(one.balls_placed, eight.balls_placed);
    assert_eq!(one.balls_released, eight.balls_released);
    assert_eq!(one.live_balls, eight.live_balls);
    assert_eq!(one.latency_p50, eight.latency_p50);
    assert_eq!(one.latency_p99, eight.latency_p99);
    assert_eq!(one.latency_max, eight.latency_max);
    // Sampled live-ball counts are schedule-driven too (max load is not
    // once snapshots go stale, so compare only the live component).
    for (a, b) in one.series.iter().zip(eight.series.iter()) {
        assert_eq!(a.tick, b.tick);
        assert_eq!(a.live_balls, b.live_balls);
    }
}

/// The same pin for the lock-free backend: racing CAS commits may
/// reorder *which* bin wins a tie, but the schedule-driven event stream
/// (arrival/commit/departure counts, every latency statistic, sampled
/// live-ball counts) is identical at any thread count.
#[test]
fn lockfree_open_loop_8_threads_conserves_and_pins_the_event_stream() {
    let mut config = OpenLoopConfig::at_lambda(512, 2, 4, 0.9, 8.0, 300, 0xE0_8888);
    config.sample_every = 16;
    config.backend = ServiceBackend::LockFree;
    config.threads = 1;
    let one = run_open_loop(&config);
    config.threads = 8;
    let eight = run_open_loop(&config);
    assert!(one.conserved && eight.conserved);
    assert_eq!(one.requests_committed, eight.requests_committed);
    assert_eq!(one.backlog, eight.backlog);
    assert_eq!(one.balls_placed, eight.balls_placed);
    assert_eq!(one.balls_released, eight.balls_released);
    assert_eq!(one.live_balls, eight.live_balls);
    assert_eq!(one.latency_p50, eight.latency_p50);
    assert_eq!(one.latency_p99, eight.latency_p99);
    assert_eq!(one.latency_max, eight.latency_max);
    for (a, b) in one.series.iter().zip(eight.series.iter()) {
        assert_eq!(a.tick, b.tick);
        assert_eq!(a.live_balls, b.live_balls);
    }
}
