//! Theory regression for the memory-bounded stores: the steady-state
//! gap of an open-loop run at λ = 0.9 must sit inside the Theorem 2
//! envelope (`theorem2_gap_band`) when decisions read a `packed4` slab,
//! and the `sketch` store's *estimated* gap must stay within the
//! envelope widened by its expected collision spread.
//!
//! Setup notes:
//!
//! * Theorem 2 assumes `d >= 2k`, so the cells run `k = 1, d = 2`
//!   (plain two-choice).
//! * `threads = 1, refresh = 1`: decisions read fresh state, so the
//!   measured gap is a property of the store representation alone.
//! * At λ = 0.9 the steady mean live load per bin is ≈ 0.9 — far below
//!   the 4-bit saturation ceiling — so the packed4 run is lossless and
//!   its gap is the *exact* gap of the quantized decision stream.
//! * The sketch aggregates ~16 bins per counter; with ≈ 0.9·n live
//!   balls each counter carries ≈ 14 colliding balls. The *gap*
//!   subtracts the mean inflation (it is `max − mean` of the estimate
//!   distribution), so only the collision *spread* survives; the
//!   sketch band adds that spread (≈ √(live/width) per row) to the
//!   theorem's slack.

use kdchoice_core::StoreKind;
use kdchoice_service::{run_open_loop, OpenLoopConfig};
use kdchoice_theory::bounds::theorem2_gap_band;

const N: usize = 1 << 12;
const SEED: u64 = 0xC0_FFEE;

fn config(store: StoreKind, seed: u64) -> OpenLoopConfig {
    let mut cfg = OpenLoopConfig::at_lambda(N, 1, 2, 0.9, 64.0, 2000, seed);
    cfg.threads = 1;
    cfg.shards = 8;
    cfg.snapshot_refresh = 1;
    cfg.store = store;
    cfg.sample_every = 4;
    cfg
}

#[test]
fn packed4_steady_gap_sits_in_theorem2_envelope() {
    let band = theorem2_gap_band(1, 2, N, 3.0);
    let report = run_open_loop(&config(StoreKind::Packed4, SEED));
    assert!(report.conserved, "packed4 run must conserve");
    println!(
        "packed4 steady gap {} band [{}, {}]",
        report.steady_gap_mean, band.lo, band.hi
    );
    assert!(
        report.steady_gap_mean >= band.lo && report.steady_gap_mean <= band.hi,
        "packed4 steady gap {} outside Theorem 2 band [{}, {}]",
        report.steady_gap_mean,
        band.lo,
        band.hi
    );
}

#[test]
fn sketch_steady_gap_sits_in_widened_envelope() {
    // Collision spread: each of the sketch's rows aggregates
    // width = n/16 counters over ≈ 0.9·n live balls, so a counter's
    // colliding mass is ≈ 14.4 with standard deviation ≈ √14.4. The
    // estimate takes a min over rows and the gap subtracts the mean,
    // leaving a max-minus-mean spread of a few row deviations.
    let live_per_counter: f64 = 0.9 * 16.0;
    let spread = 3.0 * live_per_counter.sqrt();
    let band = theorem2_gap_band(1, 2, N, 3.0 + spread);
    let report = run_open_loop(&config(StoreKind::Sketch, SEED));
    assert!(report.conserved, "sketch run must conserve");
    println!(
        "sketch steady gap {} band [{}, {}]",
        report.steady_gap_mean, band.lo, band.hi
    );
    assert!(
        report.steady_gap_mean >= band.lo && report.steady_gap_mean <= band.hi,
        "sketch steady gap {} outside widened band [{}, {}]",
        report.steady_gap_mean,
        band.lo,
        band.hi
    );
}

/// Below saturation a packed slab is a pure re-encoding of the exact
/// loads, so the whole open-loop run — decisions, histogram, every gap
/// sample — replays the exact store's stream bit for bit.
#[test]
fn packed_runs_replay_the_exact_decision_stream() {
    let exact = run_open_loop(&config(StoreKind::Exact, SEED));
    for store in [StoreKind::Packed4, StoreKind::Packed8] {
        let packed = run_open_loop(&config(store, SEED));
        assert_eq!(packed.final_histogram, exact.final_histogram, "{store}");
        assert_eq!(packed.steady_gap_mean, exact.steady_gap_mean, "{store}");
        assert_eq!(packed.final_max_load, exact.final_max_load, "{store}");
        assert_eq!(packed.live_balls, exact.live_balls, "{store}");
    }
}

/// Seeded golden bands: the committed seed's steady gap per store kind,
/// pinned with generous ± slack so only genuine regressions (a changed
/// decision stream, broken renormalization, a different sketch
/// geometry) trip it. Measured on the committed configuration above:
/// exact = packed4 = packed8 = 2.2971 (the packed runs stay lossless, so
/// all three replay the identical decision stream), sketch = 7.4351
/// (collision spread of ~16-bins-per-counter aggregation).
#[test]
fn steady_gap_golden_bands_per_store_kind() {
    for (store, lo, hi) in [
        (StoreKind::Exact, 1.0, 4.0),
        (StoreKind::Packed4, 1.0, 4.0),
        (StoreKind::Packed8, 1.0, 4.0),
        (StoreKind::Sketch, 4.0, 12.0),
    ] {
        let report = run_open_loop(&config(store, SEED));
        assert!(report.conserved, "{store} run must conserve");
        println!("{store}: steady gap {}", report.steady_gap_mean);
        assert!(
            report.steady_gap_mean >= lo && report.steady_gap_mean <= hi,
            "{store}: steady gap {} outside golden band [{lo}, {hi}]",
            report.steady_gap_mean,
        );
    }
}
