//! Statistical regression: under open-loop churn at λ = 0.9 capacity
//! with two-choice placement (k=1, d=2), the steady-state gap stays
//! O(log log n)-sized.
//!
//! Two envelopes are asserted, both on a **seeded** run (single thread,
//! batched pipeline — fully deterministic, so this is a golden
//! regression, not a flaky distributional test):
//!
//! 1. a theory cross-check: the steady gap must sit below the
//!    `kdchoice-theory` Theorem 2 upper edge `lnln n / ln⌊d/k⌋ + O(1)`
//!    (the heavily-loaded bound is the right yardstick for a churning
//!    steady state near average load ≈ λ), and scale like `lnln n`
//!    rather than `ln n` as `n` grows;
//! 2. a golden envelope: the exact steady-gap values for the pinned
//!    seeds must stay inside a recorded band, so a placement-pipeline
//!    regression that quietly worsens balance fails loudly.

use kdchoice_service::{run_open_loop, OpenLoopConfig, PipelineMode};
use kdchoice_theory::bounds::theorem2_gap_band;

/// One deterministic steady-state run: two-choice, λ=0.9, exponential
/// lifetimes of mean 32 ticks, long enough to forget the empty start.
fn steady_gap(n: usize, seed: u64) -> f64 {
    let mut config = OpenLoopConfig::at_lambda(n, 1, 2, 0.9, 32.0, 1200, seed);
    config.threads = 1;
    config.mode = PipelineMode::Batched;
    config.sample_every = 4;
    let report = run_open_loop(&config);
    assert!(report.conserved, "n={n} seed={seed}");
    assert_eq!(report.backlog, 0, "λ=0.9 must not fall behind capacity");
    // Steady state reached: the second-half ball count hovers near λ·n.
    let live = report.live_balls as f64 / n as f64;
    assert!(
        (0.75..=1.05).contains(&live),
        "n={n}: final average load {live} not near λ=0.9"
    );
    report.steady_gap_mean
}

#[test]
fn steady_gap_stays_loglog_sized_and_inside_theory_envelope() {
    let mut gaps = Vec::new();
    for (n, seed) in [
        (1 << 10, 0xD15C0u64),
        (1 << 12, 0xD15C1),
        (1 << 14, 0xD15C2),
    ] {
        let gap = steady_gap(n, seed);
        // Theorem 2 (k=1, d=2 satisfies d >= 2k): gap on the order of
        // lnln n / ln 2 + O(1); slack 3 stands in for the O(1).
        let envelope = theorem2_gap_band(1, 2, n, 3.0);
        assert!(
            gap <= envelope.hi,
            "n={n}: steady gap {gap:.2} above Theorem 2 envelope {:.2}",
            envelope.hi
        );
        assert!(gap > 0.0, "n={n}: churning system cannot be perfectly flat");
        gaps.push((n, gap));
    }

    // O(log log n), not O(log n): quadrupling n from 2^10 to 2^14 moves
    // lnln n by ~0.31; allow generous noise but reject linear-in-log
    // growth (which would add ~2.8 to a two-choice-without-choice gap).
    let growth = gaps[2].1 - gaps[0].1;
    assert!(
        growth.abs() < 1.5,
        "gap grew by {growth:.2} from n=2^10 to n=2^14 — not loglog-flat: {gaps:?}"
    );
}

/// Golden envelope for the pinned seeds: the run is deterministic, so
/// drift outside this band means the placement pipeline (not the RNG)
/// changed behavior. Recorded from the current engine; the band allows
/// ±0.75 around the recorded values to absorb intentional stream-layout
/// changes that still balance equally well.
#[test]
fn steady_gap_golden_band() {
    let gap = steady_gap(1 << 12, 0xD15C1);
    assert!(
        (1.0..=3.5).contains(&gap),
        "steady gap {gap:.3} left the golden band [1.0, 3.5]"
    );
}

/// The contrast that proves the measurement is sharp: single choice
/// (k=1, d=1) under the same churn balances far worse than two-choice.
#[test]
fn two_choice_beats_single_choice_under_churn() {
    let n = 1 << 12;
    let mut two = OpenLoopConfig::at_lambda(n, 1, 2, 0.9, 32.0, 1200, 0xD15C3);
    two.threads = 1;
    two.sample_every = 4;
    let mut one = two.clone();
    one.d = 1;
    let two_gap = run_open_loop(&two).steady_gap_mean;
    let one_gap = run_open_loop(&one).steady_gap_mean;
    assert!(
        one_gap > two_gap + 1.0,
        "single-choice steady gap {one_gap:.2} should clearly exceed two-choice {two_gap:.2}"
    );
}
