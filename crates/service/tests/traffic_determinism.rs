//! Determinism of the open-loop traffic engine (mirrors the
//! `derive_seed` contract of the experiment layer): for a fixed seed the
//! arrival/commit/departure **event stream** — and every statistic
//! computed from it (latency quantiles, committed/backlog counts, ball
//! conservation totals) — is bit-identical no matter how the placement
//! pipeline is batched or threaded.

use kdchoice_service::{
    run_open_loop, ArrivalProcess, Lifetime, OpenLoopConfig, PipelineMode, TrafficConfig,
    TrafficSchedule,
};
use proptest::prelude::*;

fn config(seed: u64, rate: f64, service_rate: u32, ticks: u32) -> OpenLoopConfig {
    OpenLoopConfig {
        bins: 48,
        k: 2,
        d: 4,
        shards: 4,
        threads: 1,
        mode: PipelineMode::Batched,
        backend: kdchoice_service::ServiceBackend::Striped,
        snapshot_refresh: 1,
        store: kdchoice_core::StoreKind::Exact,
        max_batch: 8,
        traffic: TrafficConfig {
            arrivals: ArrivalProcess::Poisson { rate },
            lifetime: Lifetime::Exponential { mean: 6.0 },
            ticks,
            service_rate,
        },
        probes: kdchoice_core::ProbeDistribution::Uniform,
        capacities: None,
        sample_every: 1,
        record_events: true,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The schedule itself is a pure function of `(config, seed)`.
    #[test]
    fn schedule_is_a_pure_function_of_the_seed(
        seed in any::<u64>(),
        rate in 0.5f64..6.0,
        service_rate in 1u32..5,
        ticks in 1u32..120,
    ) {
        let traffic = config(0, rate, service_rate, ticks).traffic;
        let a = TrafficSchedule::generate(&traffic, seed).unwrap();
        let b = TrafficSchedule::generate(&traffic, seed).unwrap();
        prop_assert_eq!(&a, &b, "same seed must reproduce the schedule");
        prop_assert_eq!(a.arrived(), a.committed() + a.backlog());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// The engine cannot perturb the event stream: batched vs
    /// per-request, any batch size, any thread count — same events,
    /// same latency quantiles, same conservation totals.
    ///
    /// What each group of assertions locks:
    /// * events/latency/committed equality pins the **config contract**:
    ///   the schedule (and everything derived from it) must never start
    ///   depending on `mode`/`max_batch`/`threads` — e.g. someone
    ///   folding the thread count into `traffic_seed` would fail here;
    /// * `conserved`, `live_balls`, and (single-threaded) the final
    ///   histogram are **execution-derived** — read back from the store
    ///   — so a pipeline that drops, duplicates, or misroutes commits
    ///   fails here.
    #[test]
    fn event_stream_survives_batching_and_threads(
        seed in any::<u64>(),
        rate in 0.5f64..5.0,
        service_rate in 1u32..4,
        max_batch in 1usize..20,
        threads in 2usize..5,
    ) {
        let reference = run_open_loop(&config(seed, rate, service_rate, 80));
        prop_assert!(reference.conserved);

        let variants = [
            {
                let mut c = config(seed, rate, service_rate, 80);
                c.mode = PipelineMode::PerRequest;
                c
            },
            {
                let mut c = config(seed, rate, service_rate, 80);
                c.max_batch = max_batch;
                c
            },
            {
                let mut c = config(seed, rate, service_rate, 80);
                c.threads = threads;
                c.max_batch = max_batch;
                c
            },
            {
                let mut c = config(seed, rate, service_rate, 80);
                c.threads = threads;
                c.mode = PipelineMode::PerRequest;
                c
            },
        ];
        for (i, variant) in variants.iter().enumerate() {
            let report = run_open_loop(variant);
            // Execution-derived: the store must agree with the schedule
            // under every batching/threading strategy.
            prop_assert!(report.conserved, "variant {i}");
            prop_assert_eq!(report.live_balls, reference.live_balls, "variant {i}");
            if variant.threads == 1 {
                // Single-threaded the whole final state is exact.
                prop_assert_eq!(
                    &report.final_histogram,
                    &reference.final_histogram,
                    "variant {i} final histogram"
                );
            }
            // Config contract: the schedule side must be untouched.
            prop_assert_eq!(&report.events, &reference.events, "variant {i} event stream");
            prop_assert_eq!(report.requests_arrived, reference.requests_arrived);
            prop_assert_eq!(report.requests_committed, reference.requests_committed);
            prop_assert_eq!(report.backlog, reference.backlog);
            prop_assert_eq!(report.latency_p50, reference.latency_p50, "variant {i}");
            prop_assert_eq!(report.latency_p99, reference.latency_p99, "variant {i}");
            prop_assert_eq!(report.latency_max, reference.latency_max);
            prop_assert_eq!(report.balls_placed, reference.balls_placed);
            prop_assert_eq!(report.balls_released, reference.balls_released);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Single-threaded, the *entire run* — including the load time
    /// series and final shape — is independent of the batch size.
    #[test]
    fn single_thread_state_is_independent_of_batch_size(
        seed in any::<u64>(),
        rate in 0.5f64..5.0,
        batch_a in 1usize..16,
        batch_b in 1usize..16,
    ) {
        let mut a = config(seed, rate, 3, 60);
        a.max_batch = batch_a;
        let mut b = config(seed, rate, 3, 60);
        b.max_batch = batch_b;
        let ra = run_open_loop(&a);
        let rb = run_open_loop(&b);
        prop_assert_eq!(&ra.series, &rb.series);
        prop_assert_eq!(ra.final_max_load, rb.final_max_load);
        prop_assert_eq!(ra.final_gap, rb.final_gap);
    }
}
