//! Staleness regression for the shared-nothing backend: two-choice
//! placement deciding on **stale load snapshots** must still land
//! inside the Theorem 2 gap envelope.
//!
//! The shared-nothing engine's probe path reads a relaxed-atomic load
//! snapshot that owners republish only every `snapshot_refresh` applied
//! mutations. Between refreshes a decision can undercount a bin by up
//! to the mutations the owner has buffered — the same bounded-staleness
//! regime the paper's adversarial-information arguments tolerate. This
//! test sweeps the refresh period over three orders of magnitude and
//! asserts the steady-state gap never escapes the `lnln n / ln⌊d/k⌋ +
//! O(1)` envelope that `open_loop_regression.rs` pins for the exact
//! (locked, always-fresh) path.
//!
//! The runs are single-threaded and therefore fully deterministic:
//! refresh period 1 makes the snapshot synchronous (bit-identical to
//! the striped backend — locked by `backend_equivalence.rs`), so any
//! gap growth observed here is attributable to staleness alone.

use kdchoice_service::{run_open_loop, OpenLoopConfig, ServiceBackend};
use kdchoice_theory::bounds::theorem2_gap_band;

/// The refresh periods swept, in applied mutations between snapshot
/// publishes. 512 is ~an eighth of the n=4096 bin population churning.
const REFRESH_PERIODS: [usize; 4] = [1, 8, 64, 512];

/// One deterministic steady-state run on the owned backend: two-choice
/// (k=1, d=2), λ=0.9, exponential lifetimes of mean 32 ticks.
fn steady_gap(n: usize, refresh: usize, seed: u64) -> f64 {
    let mut config = OpenLoopConfig::at_lambda(n, 1, 2, 0.9, 32.0, 1200, seed);
    config.threads = 1;
    config.backend = ServiceBackend::SharedNothing;
    config.snapshot_refresh = refresh;
    config.sample_every = 4;
    let report = run_open_loop(&config);
    assert!(report.conserved, "refresh={refresh}");
    assert_eq!(report.backlog, 0, "λ=0.9 must not fall behind capacity");
    let live = report.live_balls as f64 / n as f64;
    assert!(
        (0.75..=1.05).contains(&live),
        "refresh={refresh}: final average load {live} not near λ=0.9"
    );
    report.steady_gap_mean
}

/// Every refresh period stays inside the Theorem 2 envelope: stale
/// reads cost balance, but boundedly — they cannot turn O(log log n)
/// into something worse.
#[test]
fn stale_snapshot_gap_stays_inside_theorem2_envelope() {
    let n = 1 << 12;
    let envelope = theorem2_gap_band(1, 2, n, 3.0);
    let mut gaps = Vec::new();
    for refresh in REFRESH_PERIODS {
        let gap = steady_gap(n, refresh, 0x57A1E1);
        assert!(
            gap <= envelope.hi,
            "refresh={refresh}: steady gap {gap:.2} above Theorem 2 envelope {:.2}",
            envelope.hi
        );
        assert!(gap > 0.0, "churning system cannot be perfectly flat");
        gaps.push((refresh, gap));
    }
    // Staleness can only lose information: the synchronous run must be
    // at least as balanced as the most stale one, up to noise.
    let fresh = gaps[0].1;
    let most_stale = gaps[gaps.len() - 1].1;
    assert!(
        most_stale + 1.0 >= fresh,
        "staleness sweep is not monotone-ish: {gaps:?}"
    );
}

/// The synchronous-refresh run reproduces the striped regression's
/// golden band (same config shape as `open_loop_regression.rs`), so the
/// staleness sweep is anchored to the locked baseline.
#[test]
fn synchronous_refresh_sits_in_the_locked_golden_band() {
    let gap = steady_gap(1 << 12, 1, 0xD15C1);
    assert!(
        (1.0..=3.5).contains(&gap),
        "steady gap {gap:.3} left the golden band [1.0, 3.5]"
    );
}
