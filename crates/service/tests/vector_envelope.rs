//! Statistical regression for the multidimensional extension: the
//! per-dimension gaps of a static (k,d)-choice fill over vector demands
//! stay inside the demand-scaled Theorem 2 envelope
//! (`kdchoice_theory::bounds::vector_gap_band`) and scale like
//! `ln ln n`, not `ln n` — the vector analogue of
//! `open_loop_regression.rs`.
//!
//! Every run here is seeded and single-threaded, so these are golden
//! regressions, not flaky distributional tests: a kernel change that
//! quietly worsens per-dimension balance fails loudly.

use kdchoice_core::{run_once_vector, PlacementObjective, ProbeDistribution, RunConfig};
use kdchoice_prng::demand::DemandDistribution;
use kdchoice_service::{run_vector_service_workload, ServiceBackend, ServiceWorkloadConfig};
use kdchoice_theory::bounds::vector_gap_band;

const DEMAND_MAX: u32 = 4;

/// One deterministic heavy fill: `4n` balls of uniform `1..=4` demand
/// into `n` bins under (1,2)-choice with the max-norm objective.
/// Returns the largest per-dimension gap.
fn static_max_dim_gap(n: usize, dims: usize, seed: u64) -> f64 {
    let demand = DemandDistribution::uniform(DEMAND_MAX).unwrap();
    let config = RunConfig::new(n, seed).with_balls(4 * n as u64);
    let (result, store) = run_once_vector(
        1,
        2,
        dims,
        &PlacementObjective::MaxNorm,
        &demand,
        &ProbeDistribution::Uniform,
        None,
        &config,
    );
    assert_eq!(result.balls_thrown, 4 * n as u64);
    assert!(store.check_invariants(), "n={n} dims={dims}");
    store.dim_gaps().iter().cloned().fold(0.0f64, f64::max)
}

#[test]
fn per_dim_gaps_stay_inside_demand_scaled_theorem2_envelope() {
    for dims in [2usize, 4] {
        let mut gaps = Vec::new();
        for (n, seed) in [(1 << 10, 0x1EC0u64), (1 << 12, 0x1EC1), (1 << 14, 0x1EC2)] {
            let gap = static_max_dim_gap(n, dims, seed);
            // Theorem 2 at (k=1, d=2) scaled by the largest single-ball
            // demand Δ=4; slack 2Δ stands in for the O(Δ) additive term.
            let envelope = vector_gap_band(1, 2, n, DEMAND_MAX, 2.0 * f64::from(DEMAND_MAX));
            assert!(
                gap <= envelope.hi,
                "dims={dims} n={n}: max per-dim gap {gap:.2} above envelope {:.2}",
                envelope.hi
            );
            assert!(
                gap > 0.0,
                "dims={dims} n={n}: fill cannot be perfectly flat"
            );
            gaps.push((n, gap));
        }
        // O(log log n) growth: quadrupling n twice moves lnln n by ~0.3;
        // reject anything resembling ln n growth (~+2.8 per 4x in the
        // single-choice world, scaled by Δ=4 here).
        let growth = gaps[2].1 - gaps[0].1;
        assert!(
            growth.abs() < 1.5 * f64::from(DEMAND_MAX),
            "dims={dims}: max per-dim gap grew by {growth:.2} from n=2^10 to n=2^14 — not loglog-flat: {gaps:?}"
        );
    }
}

/// Golden band for one pinned cell (dims=2, n=2^12): the run is
/// deterministic, so drift outside the band means the vector kernel —
/// not the RNG — changed behavior.
#[test]
fn static_vector_gap_golden_band() {
    let gap = static_max_dim_gap(1 << 12, 2, 0x1EC1);
    assert!(
        (1.0..=12.0).contains(&gap),
        "pinned max per-dim gap {gap:.3} left the golden band [1.0, 12.0]"
    );
}

/// The same envelope holds for the dynamic path: a windowed vector
/// service workload (place/release churn) keeps every per-dimension gap
/// below the demand-scaled envelope at its final state.
#[test]
fn service_churn_per_dim_gaps_stay_inside_envelope() {
    let n = 1 << 10;
    let config = ServiceWorkloadConfig {
        bins: n,
        k: 1,
        d: 2,
        shards: 8,
        threads: 1,
        requests_per_thread: 8 * n,
        window: 2 * n,
        backend: ServiceBackend::Striped,
        snapshot_refresh: 1,
        store: kdchoice_core::StoreKind::Exact,
        dims: 2,
        objective: kdchoice_core::PlacementObjective::MaxNorm,
        demand: DemandDistribution::Uniform { max: DEMAND_MAX },
        seed: 0x1EC4,
    };
    let report = run_vector_service_workload(&config);
    assert!(report.conserved);
    assert_eq!(report.dim_gaps.len(), 2);
    let envelope = vector_gap_band(1, 2, n, DEMAND_MAX, 2.0 * f64::from(DEMAND_MAX));
    for (j, &gap) in report.dim_gaps.iter().enumerate() {
        assert!(
            gap <= envelope.hi,
            "dim {j}: churn gap {gap:.2} above envelope {:.2}",
            envelope.hi
        );
    }
}
