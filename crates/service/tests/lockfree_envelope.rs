//! Gap regression for the lock-free backend: placements deciding on
//! **racing CAS counters** must still land inside the Theorem 2 gap
//! envelope.
//!
//! The lock-free store has no snapshots to go stale — its counters are
//! the truth — but racing introduces a different information loss: a
//! decision is made against loads frozen at read time, and a lost CAS
//! forces a re-read with *fresh tie keys*, so the committed stream is
//! not the single-thread stream. After `PLACE_RETRY_LIMIT` lost races
//! the commit falls back to an unconditional `fetch_add`, which can
//! stack a ball on a bin that stopped being least-loaded mid-flight.
//! This suite sweeps the thread count over 1/2/4/8 and asserts the
//! steady-state gap never escapes the same `lnln n / ln⌊d/k⌋ + O(1)`
//! envelope that `snapshot_staleness.rs` pins for bounded-stale reads —
//! the paper's tolerance for adversarially outdated information covers
//! raced reads exactly the same way.
//!
//! The single-thread run doubles as the anchor: no CAS can fail there,
//! so it is bit-identical to the striped backend (locked by
//! `backend_equivalence.rs`) and must sit in the same golden band as
//! the locked regression baseline.

use kdchoice_service::{run_open_loop, OpenLoopConfig, ServiceBackend};
use kdchoice_theory::bounds::theorem2_gap_band;

/// The thread counts swept: the 1-thread run is deterministic; the
/// rest race placements inside each tick's commit phase.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One steady-state run on the lock-free backend: two-choice (k=1,
/// d=2), λ=0.9, exponential lifetimes of mean 32 ticks — the same
/// config shape as the staleness sweep so the envelopes compare.
fn steady_gap(n: usize, threads: usize, seed: u64) -> f64 {
    let mut config = OpenLoopConfig::at_lambda(n, 1, 2, 0.9, 32.0, 1200, seed);
    config.threads = threads;
    config.backend = ServiceBackend::LockFree;
    config.sample_every = 4;
    let report = run_open_loop(&config);
    assert!(report.conserved, "threads={threads}");
    assert_eq!(report.backlog, 0, "λ=0.9 must not fall behind capacity");
    let live = report.live_balls as f64 / n as f64;
    assert!(
        (0.75..=1.05).contains(&live),
        "threads={threads}: final average load {live} not near λ=0.9"
    );
    report.steady_gap_mean
}

/// Every thread count stays inside the Theorem 2 envelope: raced
/// commits cost balance boundedly — they cannot turn O(log log n) into
/// something worse.
#[test]
fn raced_gap_stays_inside_theorem2_envelope() {
    let n = 1 << 12;
    let envelope = theorem2_gap_band(1, 2, n, 3.0);
    for threads in THREAD_COUNTS {
        let gap = steady_gap(n, threads, 0x10CF_E0E0);
        assert!(
            gap <= envelope.hi,
            "threads={threads}: steady gap {gap:.2} above Theorem 2 envelope {:.2}",
            envelope.hi
        );
        assert!(gap > 0.0, "churning system cannot be perfectly flat");
    }
}

/// The single-thread run reproduces the striped regression's golden
/// band (same config shape as `open_loop_regression.rs` and
/// `snapshot_staleness.rs`), anchoring the race sweep to the locked
/// baseline.
#[test]
fn single_thread_sits_in_the_locked_golden_band() {
    let gap = steady_gap(1 << 12, 1, 0xD15C1);
    assert!(
        (1.0..=3.5).contains(&gap),
        "steady gap {gap:.3} left the golden band [1.0, 3.5]"
    );
}
