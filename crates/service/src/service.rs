//! [`PlacementService`]: the (k,d)-choice placement/release frontend,
//! plus the closed-loop multi-client workload used by the `service`
//! scenario and the thread-scaling throughput harness.

use std::time::Instant;

use kdchoice_core::{BinStore, ProbeDistribution, StoreKind};
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};
use rand::RngCore;

use crate::engine::ServiceBackend;
use crate::sharded::{Placement, ShardedStore};

/// Errors constructing a [`PlacementService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// `k` was zero.
    ZeroK,
    /// `d < k`: a request cannot place `k` balls on fewer probed slots.
    TooFewProbes {
        /// Requested balls per placement.
        k: usize,
        /// Requested probes per placement.
        d: usize,
    },
    /// A weighted probe distribution was built for a different number of
    /// bins than the store holds.
    ProbeMismatch {
        /// Bins in the store.
        store_n: usize,
        /// Support size the distribution was built for.
        probes_n: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ZeroK => write!(f, "k must be at least 1"),
            ServiceError::TooFewProbes { k, d } => {
                write!(f, "(k,d)-choice service needs d >= k (k={k}, d={d})")
            }
            ServiceError::ProbeMismatch { store_n, probes_n } => write!(
                f,
                "probe distribution built for {probes_n} bins, store holds {store_n}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A concurrent (k,d)-choice placement service over a [`ShardedStore`].
///
/// Many client threads share one `&PlacementService`; each placement
/// request samples `d` bins i.u.r. with replacement from the caller's
/// own RNG (per-thread streams stay deterministic), then commits balls
/// into the `k` least-loaded tentative slots atomically — probes span
/// shards, shard locks are taken in canonical ascending order, and the
/// read–decide–commit sequence holds every involved lock, so a request
/// is one linearization point.
///
/// ```
/// use kdchoice_service::{PlacementService, ShardedStore};
/// use kdchoice_prng::Xoshiro256PlusPlus;
///
/// let service = PlacementService::new(ShardedStore::new(64, 8), 2, 4).unwrap();
/// let mut rng = Xoshiro256PlusPlus::from_u64(7);
/// let placement = service.place(&mut rng);
/// assert_eq!(placement.bins.len(), 2);
/// service.release(&placement);
/// use kdchoice_core::BinStore;
/// assert_eq!(service.store().total_balls(), 0);
/// ```
#[derive(Debug)]
pub struct PlacementService {
    store: ShardedStore,
    probes: ProbeDistribution,
    k: usize,
    d: usize,
}

impl PlacementService {
    /// Wraps `store` in a (k,d)-choice service frontend with uniform
    /// probing (the paper's model).
    pub fn new(store: ShardedStore, k: usize, d: usize) -> Result<Self, ServiceError> {
        if k == 0 {
            return Err(ServiceError::ZeroK);
        }
        if d < k {
            return Err(ServiceError::TooFewProbes { k, d });
        }
        Ok(Self {
            store,
            probes: ProbeDistribution::Uniform,
            k,
            d,
        })
    }

    /// Switches the probe distribution (builder style) — the weighted /
    /// heterogeneous service. The uniform default (and any distribution
    /// whose weights degenerate to equal) draws the identical generator
    /// stream as before the seam existed, so existing per-client streams
    /// are unperturbed.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::ProbeMismatch`] when a non-uniform
    /// distribution was built for a different bin count.
    pub fn with_probes(mut self, probes: ProbeDistribution) -> Result<Self, ServiceError> {
        if let Some(probes_n) = probes.expected_n() {
            if probes_n != self.store.n() {
                return Err(ServiceError::ProbeMismatch {
                    store_n: self.store.n(),
                    probes_n,
                });
            }
        }
        self.probes = probes;
        Ok(self)
    }

    /// The active probe distribution.
    pub fn probes(&self) -> &ProbeDistribution {
        &self.probes
    }

    /// Balls per placement request.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Probes per placement request.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The underlying store (merged observables on demand).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Consumes the service, returning the store.
    pub fn into_store(self) -> ShardedStore {
        self.store
    }

    /// Serves one placement request: samples `d` bins from `rng` through
    /// the probe distribution, commits the `k` least-loaded tentative
    /// slots atomically.
    pub fn place<R: RngCore + ?Sized>(&self, rng: &mut R) -> Placement {
        let n = self.store.n();
        let mut probes = [0usize; 16];
        if self.d <= probes.len() {
            let probes = &mut probes[..self.d];
            for p in probes.iter_mut() {
                *p = self.probes.sample(rng, n);
            }
            self.store.place_k_least(probes, self.k, rng)
        } else {
            let probes: Vec<usize> = (0..self.d).map(|_| self.probes.sample(rng, n)).collect();
            self.store.place_k_least(&probes, self.k, rng)
        }
    }

    /// Serves a release request for a previous placement.
    pub fn release(&self, placement: &Placement) {
        self.store.release(&placement.bins);
    }
}

/// Configuration of one closed-loop service workload: `threads` clients
/// each issue `requests_per_thread` placement requests back to back,
/// optionally releasing their oldest live placement once more than
/// `window` are outstanding (the §7 infinite/dynamic process; `window ==
/// 0` disables releases and the run is the static process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceWorkloadConfig {
    /// Number of bins.
    pub bins: usize,
    /// Balls per placement request.
    pub k: usize,
    /// Probes per placement request (`d ≥ k`).
    pub d: usize,
    /// Shard count (power of two, ≤ bins).
    pub shards: usize,
    /// Concurrent client threads.
    pub threads: usize,
    /// Placement requests issued by each client.
    pub requests_per_thread: usize,
    /// Live placements each client retains; 0 = never release.
    pub window: usize,
    /// Which concurrency backend serves the requests. With
    /// [`ServiceBackend::SharedNothing`] the clients **are** the shard
    /// owners (`shards` is ignored; ownership = threads) and `threads <=
    /// bins` is required.
    pub backend: ServiceBackend,
    /// Shared-nothing only: snapshot republish period in mutations
    /// (`>= 1`); ignored by the striped backend.
    pub snapshot_refresh: usize,
    /// Which bin-store representation backs the workload (exact loads,
    /// packed b-bit offsets, or a count-min sketch).
    pub store: StoreKind,
    /// Master seed; client `t` runs on `derive_seed(seed, t)`.
    pub seed: u64,
}

impl ServiceWorkloadConfig {
    /// A small default workload: `(2,4)`-choice over `bins` bins.
    pub fn new(bins: usize, threads: usize, requests_per_thread: usize, seed: u64) -> Self {
        Self {
            bins,
            k: 2,
            d: 4,
            shards: 8.min(prev_power_of_two(bins)),
            threads,
            requests_per_thread,
            window: 0,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            seed,
        }
    }
}

/// The largest power of two ≤ `n` (`n ≥ 1`) — the round-*down* helper
/// shard defaults must use (`next_power_of_two` rounds up and can exceed
/// `n`, which `ShardedStore::new` rejects).
pub(crate) fn prev_power_of_two(n: usize) -> usize {
    assert!(n >= 1);
    if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() / 2
    }
}

/// Aggregate results of one closed-loop service workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Placement requests served.
    pub placements: u64,
    /// Balls placed (`placements × k`).
    pub balls_placed: u64,
    /// Balls released.
    pub balls_released: u64,
    /// Balls still live at the end (`placed − released`).
    pub live_balls: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Placement requests per second.
    pub placements_per_sec: f64,
    /// Balls placed per second — the thread-scaling headline number.
    pub balls_per_sec: f64,
    /// Final maximum load over all bins.
    pub max_load: u32,
    /// Final gap `max load − average load`.
    pub gap: f64,
    /// `ν_1` at the end (bins holding at least one ball).
    pub nu1: u64,
    /// Whether the merged store passed `check_invariants` and conserved
    /// balls (`total == placed − released`).
    pub conserved: bool,
}

/// Runs one closed-loop workload: spawns `threads` clients hammering a
/// shared [`PlacementService`], then reads the merged observables.
///
/// Each client's request stream (its sampled probes and tie keys) is a
/// pure function of `derive_seed(config.seed, client_index)`; the
/// *interleaving* of commits across clients — and therefore wall-clock
/// throughput and (slightly) the final load shape — is scheduler-driven
/// and not reproducible across runs. Conservation and per-shard
/// invariants hold regardless, and are re-checked on every run.
///
/// # Panics
///
/// Panics on invalid configuration (zero threads/bins, `d < k`,
/// non-power-of-two shards).
pub fn run_service_workload(config: &ServiceWorkloadConfig) -> ServiceReport {
    assert!(config.threads > 0, "need at least one client thread");
    if config.backend == ServiceBackend::SharedNothing {
        return crate::engine::run_service_workload_owned(config);
    }
    let store = ShardedStore::with_kind(config.bins, config.shards, config.store);
    let service = PlacementService::new(store, config.k, config.d)
        .unwrap_or_else(|e| panic!("invalid service config: {e}"));

    let start = Instant::now();
    let released_counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                let service = &service;
                scope.spawn(move || {
                    let mut rng = Xoshiro256PlusPlus::from_u64(derive_seed(config.seed, t as u64));
                    let mut live: std::collections::VecDeque<Placement> =
                        std::collections::VecDeque::new();
                    let mut released = 0u64;
                    for _ in 0..config.requests_per_thread {
                        let placement = service.place(&mut rng);
                        if config.window > 0 {
                            live.push_back(placement);
                            if live.len() > config.window {
                                let oldest = live.pop_front().expect("window > 0");
                                released += oldest.bins.len() as u64;
                                service.release(&oldest);
                            }
                        }
                    }
                    released
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread must not panic"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let placements = (config.threads * config.requests_per_thread) as u64;
    let balls_placed = placements * config.k as u64;
    let balls_released: u64 = released_counts.iter().sum();
    let store = service.into_store();
    let live_balls = store.total_balls();
    let conserved = live_balls == balls_placed - balls_released && store.check_invariants();
    ServiceReport {
        placements,
        balls_placed,
        balls_released,
        live_balls,
        wall_secs,
        placements_per_sec: placements as f64 / wall_secs,
        balls_per_sec: balls_placed as f64 / wall_secs,
        max_load: store.max_load(),
        gap: store.gap(),
        nu1: store.nu(1),
        conserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_validates_k_and_d() {
        assert_eq!(
            PlacementService::new(ShardedStore::new(8, 2), 0, 3).unwrap_err(),
            ServiceError::ZeroK
        );
        assert_eq!(
            PlacementService::new(ShardedStore::new(8, 2), 3, 2).unwrap_err(),
            ServiceError::TooFewProbes { k: 3, d: 2 }
        );
        assert!(PlacementService::new(ShardedStore::new(8, 2), 2, 2).is_ok());
    }

    #[test]
    fn single_thread_workload_is_exact() {
        let cfg = ServiceWorkloadConfig {
            bins: 64,
            k: 2,
            d: 4,
            shards: 4,
            threads: 1,
            requests_per_thread: 500,
            window: 0,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            seed: 11,
        };
        let report = run_service_workload(&cfg);
        assert_eq!(report.placements, 500);
        assert_eq!(report.balls_placed, 1000);
        assert_eq!(report.balls_released, 0);
        assert_eq!(report.live_balls, 1000);
        assert!(report.conserved);
        assert!(report.max_load >= 16, "1000 balls over 64 bins");
        assert!(report.gap >= 0.0);
    }

    #[test]
    fn windowed_workload_releases_and_conserves() {
        let cfg = ServiceWorkloadConfig {
            bins: 32,
            k: 2,
            d: 4,
            shards: 4,
            threads: 4,
            requests_per_thread: 300,
            window: 10,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            seed: 5,
        };
        let report = run_service_workload(&cfg);
        assert_eq!(report.placements, 1200);
        assert!(report.balls_released > 0);
        // Each client retains at most `window` live placements of k balls.
        assert!(report.live_balls <= (4 * 10 * 2) as u64);
        assert!(report.conserved);
    }

    #[test]
    fn with_probes_validates_support_size() {
        let service = PlacementService::new(ShardedStore::new(8, 2), 2, 4).unwrap();
        assert_eq!(
            service
                .with_probes(ProbeDistribution::zipf(9, 1.0).unwrap())
                .unwrap_err(),
            ServiceError::ProbeMismatch {
                store_n: 8,
                probes_n: 9
            }
        );
        let service = PlacementService::new(ShardedStore::new(8, 2), 2, 4)
            .unwrap()
            .with_probes(ProbeDistribution::zipf(8, 1.0).unwrap())
            .unwrap();
        assert!(!service.probes().is_uniform());
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let p = service.place(&mut rng);
        assert_eq!(p.bins.len(), 2);
    }

    #[test]
    fn weighted_service_on_heterogeneous_store_conserves() {
        use kdchoice_core::two_tier_capacities;
        let n = 32;
        let caps = two_tier_capacities(n, 4, 8);
        let store = ShardedStore::with_capacities(n, 4, &caps);
        let service = PlacementService::new(store, 2, 4)
            .unwrap()
            .with_probes(ProbeDistribution::proportional_to(&caps).unwrap())
            .unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let placements: Vec<Placement> = (0..200).map(|_| service.place(&mut rng)).collect();
        assert_eq!(service.store().total_balls(), 400);
        assert!(service.store().max_utilization() > 0.0);
        for p in &placements {
            service.release(p);
        }
        assert_eq!(service.store().total_balls(), 0);
        assert!(service.store().check_invariants());
    }

    #[test]
    fn large_d_takes_the_heap_path() {
        let service = PlacementService::new(ShardedStore::new(64, 8), 4, 32).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let p = service.place(&mut rng);
        assert_eq!(p.bins.len(), 4);
        assert_eq!(service.store().total_balls(), 4);
    }

    #[test]
    fn default_config_shards_are_valid() {
        for bins in [1usize, 2, 3, 7, 8, 9, 100, 1024] {
            let cfg = ServiceWorkloadConfig::new(bins, 1, 1, 0);
            assert!(
                cfg.shards.is_power_of_two() && cfg.shards <= bins,
                "bins={bins}"
            );
            let _ = run_service_workload(&cfg);
        }
    }
}
