//! [`PlacementService`]: the (k,d)-choice placement/release frontend,
//! plus the closed-loop multi-client workload used by the `service`
//! scenario and the thread-scaling throughput harness.

use std::sync::Mutex;
use std::time::Instant;

use kdchoice_core::{
    decide_k_least_vector, BinStore, PlacementObjective, ProbeDistribution, StoreKind, VectorLoad,
    VectorSlot,
};
use kdchoice_prng::demand::DemandDistribution;
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};
use rand::RngCore;

use crate::engine::ServiceBackend;
use crate::sharded::{Placement, ShardedStore};

/// Errors constructing a [`PlacementService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// `k` was zero.
    ZeroK,
    /// `d < k`: a request cannot place `k` balls on fewer probed slots.
    TooFewProbes {
        /// Requested balls per placement.
        k: usize,
        /// Requested probes per placement.
        d: usize,
    },
    /// A weighted probe distribution was built for a different number of
    /// bins than the store holds.
    ProbeMismatch {
        /// Bins in the store.
        store_n: usize,
        /// Support size the distribution was built for.
        probes_n: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ZeroK => write!(f, "k must be at least 1"),
            ServiceError::TooFewProbes { k, d } => {
                write!(f, "(k,d)-choice service needs d >= k (k={k}, d={d})")
            }
            ServiceError::ProbeMismatch { store_n, probes_n } => write!(
                f,
                "probe distribution built for {probes_n} bins, store holds {store_n}"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A concurrent (k,d)-choice placement service over a [`ShardedStore`].
///
/// Many client threads share one `&PlacementService`; each placement
/// request samples `d` bins i.u.r. with replacement from the caller's
/// own RNG (per-thread streams stay deterministic), then commits balls
/// into the `k` least-loaded tentative slots atomically — probes span
/// shards, shard locks are taken in canonical ascending order, and the
/// read–decide–commit sequence holds every involved lock, so a request
/// is one linearization point.
///
/// ```
/// use kdchoice_service::{PlacementService, ShardedStore};
/// use kdchoice_prng::Xoshiro256PlusPlus;
///
/// let service = PlacementService::new(ShardedStore::new(64, 8), 2, 4).unwrap();
/// let mut rng = Xoshiro256PlusPlus::from_u64(7);
/// let placement = service.place(&mut rng);
/// assert_eq!(placement.bins.len(), 2);
/// service.release(&placement);
/// use kdchoice_core::BinStore;
/// assert_eq!(service.store().total_balls(), 0);
/// ```
#[derive(Debug)]
pub struct PlacementService {
    store: ShardedStore,
    probes: ProbeDistribution,
    k: usize,
    d: usize,
}

impl PlacementService {
    /// Wraps `store` in a (k,d)-choice service frontend with uniform
    /// probing (the paper's model).
    pub fn new(store: ShardedStore, k: usize, d: usize) -> Result<Self, ServiceError> {
        if k == 0 {
            return Err(ServiceError::ZeroK);
        }
        if d < k {
            return Err(ServiceError::TooFewProbes { k, d });
        }
        Ok(Self {
            store,
            probes: ProbeDistribution::Uniform,
            k,
            d,
        })
    }

    /// Switches the probe distribution (builder style) — the weighted /
    /// heterogeneous service. The uniform default (and any distribution
    /// whose weights degenerate to equal) draws the identical generator
    /// stream as before the seam existed, so existing per-client streams
    /// are unperturbed.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::ProbeMismatch`] when a non-uniform
    /// distribution was built for a different bin count.
    pub fn with_probes(mut self, probes: ProbeDistribution) -> Result<Self, ServiceError> {
        if let Some(probes_n) = probes.expected_n() {
            if probes_n != self.store.n() {
                return Err(ServiceError::ProbeMismatch {
                    store_n: self.store.n(),
                    probes_n,
                });
            }
        }
        self.probes = probes;
        Ok(self)
    }

    /// The active probe distribution.
    pub fn probes(&self) -> &ProbeDistribution {
        &self.probes
    }

    /// Balls per placement request.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Probes per placement request.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The underlying store (merged observables on demand).
    pub fn store(&self) -> &ShardedStore {
        &self.store
    }

    /// Consumes the service, returning the store.
    pub fn into_store(self) -> ShardedStore {
        self.store
    }

    /// Serves one placement request: samples `d` bins from `rng` through
    /// the probe distribution, commits the `k` least-loaded tentative
    /// slots atomically.
    pub fn place<R: RngCore + ?Sized>(&self, rng: &mut R) -> Placement {
        let n = self.store.n();
        let mut probes = [0usize; 16];
        if self.d <= probes.len() {
            let probes = &mut probes[..self.d];
            for p in probes.iter_mut() {
                *p = self.probes.sample(rng, n);
            }
            self.store.place_k_least(probes, self.k, rng)
        } else {
            let probes: Vec<usize> = (0..self.d).map(|_| self.probes.sample(rng, n)).collect();
            self.store.place_k_least(&probes, self.k, rng)
        }
    }

    /// Serves a release request for a previous placement.
    pub fn release(&self, placement: &Placement) {
        self.store.release(&placement.bins);
    }
}

/// Configuration of one closed-loop service workload: `threads` clients
/// each issue `requests_per_thread` placement requests back to back,
/// optionally releasing their oldest live placement once more than
/// `window` are outstanding (the §7 infinite/dynamic process; `window ==
/// 0` disables releases and the run is the static process).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceWorkloadConfig {
    /// Number of bins.
    pub bins: usize,
    /// Balls per placement request.
    pub k: usize,
    /// Probes per placement request (`d ≥ k`).
    pub d: usize,
    /// Shard count (power of two, ≤ bins).
    pub shards: usize,
    /// Concurrent client threads.
    pub threads: usize,
    /// Placement requests issued by each client.
    pub requests_per_thread: usize,
    /// Live placements each client retains; 0 = never release.
    pub window: usize,
    /// Which concurrency backend serves the requests. With
    /// [`ServiceBackend::SharedNothing`] the clients **are** the shard
    /// owners (`shards` is ignored; ownership = threads) and `threads <=
    /// bins` is required. [`ServiceBackend::LockFree`] ignores `shards`
    /// and `snapshot_refresh` — one flat CAS-bins array serves everyone.
    pub backend: ServiceBackend,
    /// Shared-nothing only: snapshot republish period in mutations
    /// (`>= 1`); ignored by the striped backend.
    pub snapshot_refresh: usize,
    /// Which bin-store representation backs the workload (exact loads,
    /// packed b-bit offsets, or a count-min sketch).
    pub store: StoreKind,
    /// Demand-vector dimensionality (1 = the scalar process). Anything
    /// but `(1, Scalar, Unit)` routes through the vector workload, which
    /// supports only the striped backend over the exact store.
    pub dims: usize,
    /// How probe comparison keys are computed from a load vector.
    pub objective: PlacementObjective,
    /// How per-request demand vectors are drawn.
    pub demand: DemandDistribution,
    /// Master seed; client `t` runs on `derive_seed(seed, t)`.
    pub seed: u64,
}

impl ServiceWorkloadConfig {
    /// A small default workload: `(2,4)`-choice over `bins` bins.
    pub fn new(bins: usize, threads: usize, requests_per_thread: usize, seed: u64) -> Self {
        Self {
            bins,
            k: 2,
            d: 4,
            shards: 8.min(prev_power_of_two(bins)),
            threads,
            requests_per_thread,
            window: 0,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            dims: 1,
            objective: PlacementObjective::Scalar,
            demand: DemandDistribution::Unit,
            seed,
        }
    }

    /// Whether this workload routes through the vector driver (anything
    /// but the scalar `(dims=1, Scalar, Unit)` triple).
    pub fn is_vector(&self) -> bool {
        self.dims != 1
            || self.objective != PlacementObjective::Scalar
            || self.demand != DemandDistribution::Unit
    }
}

/// The largest power of two ≤ `n` (`n ≥ 1`) — the round-*down* helper
/// shard defaults must use (`next_power_of_two` rounds up and can exceed
/// `n`, which `ShardedStore::new` rejects).
pub(crate) fn prev_power_of_two(n: usize) -> usize {
    assert!(n >= 1);
    if n.is_power_of_two() {
        n
    } else {
        n.next_power_of_two() / 2
    }
}

/// Aggregate results of one closed-loop service workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Placement requests served.
    pub placements: u64,
    /// Balls placed (`placements × k`).
    pub balls_placed: u64,
    /// Balls released.
    pub balls_released: u64,
    /// Balls still live at the end (`placed − released`).
    pub live_balls: u64,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Placement requests per second.
    pub placements_per_sec: f64,
    /// Balls placed per second — the thread-scaling headline number.
    pub balls_per_sec: f64,
    /// Final maximum load over all bins.
    pub max_load: u32,
    /// Final gap `max load − average load`.
    pub gap: f64,
    /// `ν_1` at the end (bins holding at least one ball).
    pub nu1: u64,
    /// Whether the merged store passed `check_invariants` and conserved
    /// balls (`total == placed − released`).
    pub conserved: bool,
    /// Per-dimension gaps `max_j − mean_j` of the final state; on the
    /// scalar paths this is `[gap]`.
    pub dim_gaps: Vec<f64>,
}

/// Runs one closed-loop workload: spawns `threads` clients hammering a
/// shared [`PlacementService`], then reads the merged observables.
///
/// Each client's request stream (its sampled probes and tie keys) is a
/// pure function of `derive_seed(config.seed, client_index)`; the
/// *interleaving* of commits across clients — and therefore wall-clock
/// throughput and (slightly) the final load shape — is scheduler-driven
/// and not reproducible across runs. Conservation and per-shard
/// invariants hold regardless, and are re-checked on every run.
///
/// # Panics
///
/// Panics on invalid configuration (zero threads/bins, `d < k`,
/// non-power-of-two shards).
pub fn run_service_workload(config: &ServiceWorkloadConfig) -> ServiceReport {
    assert!(config.threads > 0, "need at least one client thread");
    if config.is_vector() {
        return run_vector_service_workload(config);
    }
    if config.backend == ServiceBackend::SharedNothing {
        return crate::engine::run_service_workload_owned(config);
    }
    if config.backend == ServiceBackend::LockFree {
        return crate::lockfree::run_service_workload_lockfree(config);
    }
    let store = ShardedStore::with_kind(config.bins, config.shards, config.store);
    let service = PlacementService::new(store, config.k, config.d)
        .unwrap_or_else(|e| panic!("invalid service config: {e}"));

    let start = Instant::now();
    let released_counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                let service = &service;
                scope.spawn(move || {
                    let mut rng = Xoshiro256PlusPlus::from_u64(derive_seed(config.seed, t as u64));
                    let mut live: std::collections::VecDeque<Placement> =
                        std::collections::VecDeque::new();
                    let mut released = 0u64;
                    for _ in 0..config.requests_per_thread {
                        let placement = service.place(&mut rng);
                        if config.window > 0 {
                            live.push_back(placement);
                            if live.len() > config.window {
                                let oldest = live.pop_front().expect("window > 0");
                                released += oldest.bins.len() as u64;
                                service.release(&oldest);
                            }
                        }
                    }
                    released
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread must not panic"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let placements = (config.threads * config.requests_per_thread) as u64;
    let balls_placed = placements * config.k as u64;
    let balls_released: u64 = released_counts.iter().sum();
    let store = service.into_store();
    let live_balls = store.total_balls();
    let conserved = live_balls == balls_placed - balls_released && store.check_invariants();
    ServiceReport {
        placements,
        balls_placed,
        balls_released,
        live_balls,
        wall_secs,
        placements_per_sec: placements as f64 / wall_secs,
        balls_per_sec: balls_placed as f64 / wall_secs,
        max_load: store.max_load(),
        gap: store.gap(),
        nu1: store.nu(1),
        conserved,
        dim_gaps: vec![store.gap()],
    }
}

/// Runs one closed-loop **vector-load** workload: `threads` clients share
/// a [`VectorLoad`] store behind one mutex, each request sampling `d`
/// uniform probes, one demand vector, and committing the `k` slots with
/// the smallest objective keys ([`decide_k_least_vector`]).
///
/// The per-client generator stream is `d` probe draws, then the demand
/// draws, then one tie-break per tentative slot — **exactly** the striped
/// scalar service's stream when `dims = 1`, `objective = Scalar`, and
/// `demand = Unit` ([`DemandDistribution::Unit`] draws nothing), so a
/// single-threaded run is bit-identical to [`run_service_workload`] on
/// either scalar backend; the equivalence tests pin this. Windowed
/// releases remember each placement's demand vector and subtract it
/// dimension-for-dimension.
///
/// This is also where a scalar-looking config routed by
/// [`ServiceWorkloadConfig::is_vector`] lands; calling it directly with a
/// scalar triple forces the vector machinery (the equivalence tests do).
///
/// # Panics
///
/// Panics on invalid configuration: zero threads/bins, `d < k`, a
/// malformed objective, the shared-nothing backend (vector stores have no
/// owned-shard engine yet), or a non-exact store (packed/sketch lanes
/// cannot hold vector loads).
pub fn run_vector_service_workload(config: &ServiceWorkloadConfig) -> ServiceReport {
    assert!(config.threads > 0, "need at least one client thread");
    assert!(config.bins > 0, "need at least one bin");
    assert!(
        config.k >= 1 && config.k <= config.d,
        "need 1 <= k <= d (k={}, d={})",
        config.k,
        config.d
    );
    assert!(
        config.objective.validate(config.dims),
        "objective {} is not valid for dims={}",
        config.objective.name(),
        config.dims
    );
    assert!(
        config.backend == ServiceBackend::Striped,
        "vector loads support only the striped backend (got {})",
        config.backend.name()
    );
    assert!(
        config.store == StoreKind::Exact,
        "vector loads need store=exact (got {})",
        config.store.name()
    );
    let store = Mutex::new(VectorLoad::new(config.dims, config.bins));

    let start = Instant::now();
    let released_counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    let mut rng = Xoshiro256PlusPlus::from_u64(derive_seed(config.seed, t as u64));
                    let mut probes = vec![0usize; config.d];
                    let mut slots: Vec<VectorSlot> = Vec::with_capacity(config.d);
                    let mut demand_buf: Vec<u32> = Vec::with_capacity(config.dims);
                    let mut live: std::collections::VecDeque<(Vec<usize>, Vec<u32>)> =
                        std::collections::VecDeque::new();
                    let mut released = 0u64;
                    for _ in 0..config.requests_per_thread {
                        for p in probes.iter_mut() {
                            *p = ProbeDistribution::Uniform.sample(&mut rng, config.bins);
                        }
                        probes.sort_unstable();
                        config
                            .demand
                            .sample_into(&mut rng, config.dims, &mut demand_buf);
                        let mut bins = Vec::with_capacity(config.k);
                        {
                            let guard = &mut *store.lock().expect("store mutex poisoned");
                            decide_k_least_vector(
                                guard,
                                &probes,
                                config.k,
                                &demand_buf,
                                &config.objective,
                                &mut rng,
                                &mut slots,
                                &mut bins,
                            );
                            for &bin in &bins {
                                guard.add(bin, &demand_buf);
                            }
                        }
                        if config.window > 0 {
                            live.push_back((bins, demand_buf.clone()));
                            if live.len() > config.window {
                                let (bins, demand) = live.pop_front().expect("window > 0");
                                released += bins.len() as u64;
                                let guard = &mut *store.lock().expect("store mutex poisoned");
                                for &bin in &bins {
                                    guard.remove(bin, &demand);
                                }
                            }
                        }
                    }
                    released
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread must not panic"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let placements = (config.threads * config.requests_per_thread) as u64;
    let balls_placed = placements * config.k as u64;
    let balls_released: u64 = released_counts.iter().sum();
    let store = store.into_inner().expect("store mutex poisoned");
    let live_balls = store.balls().total_balls();
    let conserved = live_balls == balls_placed - balls_released && store.check_invariants();
    ServiceReport {
        placements,
        balls_placed,
        balls_released,
        live_balls,
        wall_secs,
        placements_per_sec: placements as f64 / wall_secs,
        balls_per_sec: balls_placed as f64 / wall_secs,
        max_load: store.balls().max_load(),
        gap: store.balls().gap(),
        nu1: store.balls().nu(1),
        conserved,
        dim_gaps: store.dim_gaps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_validates_k_and_d() {
        assert_eq!(
            PlacementService::new(ShardedStore::new(8, 2), 0, 3).unwrap_err(),
            ServiceError::ZeroK
        );
        assert_eq!(
            PlacementService::new(ShardedStore::new(8, 2), 3, 2).unwrap_err(),
            ServiceError::TooFewProbes { k: 3, d: 2 }
        );
        assert!(PlacementService::new(ShardedStore::new(8, 2), 2, 2).is_ok());
    }

    #[test]
    fn single_thread_workload_is_exact() {
        let cfg = ServiceWorkloadConfig {
            bins: 64,
            k: 2,
            d: 4,
            shards: 4,
            threads: 1,
            requests_per_thread: 500,
            window: 0,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            dims: 1,
            objective: PlacementObjective::Scalar,
            demand: DemandDistribution::Unit,
            seed: 11,
        };
        let report = run_service_workload(&cfg);
        assert_eq!(report.placements, 500);
        assert_eq!(report.balls_placed, 1000);
        assert_eq!(report.balls_released, 0);
        assert_eq!(report.live_balls, 1000);
        assert!(report.conserved);
        assert!(report.max_load >= 16, "1000 balls over 64 bins");
        assert!(report.gap >= 0.0);
    }

    #[test]
    fn windowed_workload_releases_and_conserves() {
        let cfg = ServiceWorkloadConfig {
            bins: 32,
            k: 2,
            d: 4,
            shards: 4,
            threads: 4,
            requests_per_thread: 300,
            window: 10,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            dims: 1,
            objective: PlacementObjective::Scalar,
            demand: DemandDistribution::Unit,
            seed: 5,
        };
        let report = run_service_workload(&cfg);
        assert_eq!(report.placements, 1200);
        assert!(report.balls_released > 0);
        // Each client retains at most `window` live placements of k balls.
        assert!(report.live_balls <= (4 * 10 * 2) as u64);
        assert!(report.conserved);
    }

    #[test]
    fn with_probes_validates_support_size() {
        let service = PlacementService::new(ShardedStore::new(8, 2), 2, 4).unwrap();
        assert_eq!(
            service
                .with_probes(ProbeDistribution::zipf(9, 1.0).unwrap())
                .unwrap_err(),
            ServiceError::ProbeMismatch {
                store_n: 8,
                probes_n: 9
            }
        );
        let service = PlacementService::new(ShardedStore::new(8, 2), 2, 4)
            .unwrap()
            .with_probes(ProbeDistribution::zipf(8, 1.0).unwrap())
            .unwrap();
        assert!(!service.probes().is_uniform());
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let p = service.place(&mut rng);
        assert_eq!(p.bins.len(), 2);
    }

    #[test]
    fn weighted_service_on_heterogeneous_store_conserves() {
        use kdchoice_core::two_tier_capacities;
        let n = 32;
        let caps = two_tier_capacities(n, 4, 8);
        let store = ShardedStore::with_capacities(n, 4, &caps);
        let service = PlacementService::new(store, 2, 4)
            .unwrap()
            .with_probes(ProbeDistribution::proportional_to(&caps).unwrap())
            .unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let placements: Vec<Placement> = (0..200).map(|_| service.place(&mut rng)).collect();
        assert_eq!(service.store().total_balls(), 400);
        assert!(service.store().max_utilization() > 0.0);
        for p in &placements {
            service.release(p);
        }
        assert_eq!(service.store().total_balls(), 0);
        assert!(service.store().check_invariants());
    }

    #[test]
    fn large_d_takes_the_heap_path() {
        let service = PlacementService::new(ShardedStore::new(64, 8), 4, 32).unwrap();
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let p = service.place(&mut rng);
        assert_eq!(p.bins.len(), 4);
        assert_eq!(service.store().total_balls(), 4);
    }

    /// Satellite of the vector tentpole: forcing a scalar `(dims=1,
    /// Scalar, Unit)` workload through the vector machinery reproduces
    /// **both** scalar backends bit for bit at `threads = 1` — same
    /// final loads, same gap, same ν₁ — because the generator stream
    /// (d probe draws, zero demand draws, one tie per slot) and the
    /// `total_cmp`-on-integer-keys comparisons coincide.
    #[test]
    fn vector_workload_at_dims_1_matches_both_scalar_backends() {
        for window in [0usize, 16] {
            let mut cfg = ServiceWorkloadConfig::new(64, 1, 700, 29);
            cfg.window = window;
            let vector = run_vector_service_workload(&cfg);
            for backend in [
                ServiceBackend::Striped,
                ServiceBackend::SharedNothing,
                ServiceBackend::LockFree,
            ] {
                cfg.backend = backend;
                let scalar = run_service_workload(&cfg);
                assert!(!cfg.is_vector(), "scalar triple must not route to vector");
                assert_eq!(
                    vector.max_load,
                    scalar.max_load,
                    "{} window={window}",
                    backend.name()
                );
                assert_eq!(vector.live_balls, scalar.live_balls);
                assert_eq!(vector.balls_released, scalar.balls_released);
                assert_eq!(vector.nu1, scalar.nu1, "{}", backend.name());
                assert!((vector.gap - scalar.gap).abs() < 1e-12);
                assert!(vector.conserved && scalar.conserved);
            }
            assert_eq!(vector.dim_gaps.len(), 1);
            assert!((vector.dim_gaps[0] - vector.gap).abs() < 1e-12);
        }
    }

    #[test]
    fn vector_workload_places_releases_and_conserves() {
        let mut cfg = ServiceWorkloadConfig::new(64, 4, 400, 17);
        cfg.dims = 3;
        cfg.objective = PlacementObjective::MaxNorm;
        cfg.demand = DemandDistribution::anti_correlated(4).unwrap();
        cfg.window = 8;
        assert!(cfg.is_vector());
        // The scalar frontend routes vector configs to the vector driver.
        let report = run_service_workload(&cfg);
        assert_eq!(report.placements, 1600);
        assert!(report.balls_released > 0);
        assert!(report.live_balls <= (4 * 8 * 2) as u64);
        assert!(report.conserved);
        assert_eq!(report.dim_gaps.len(), 3);
        assert!(report.dim_gaps.iter().all(|g| g.is_finite() && *g >= 0.0));
    }

    #[test]
    #[should_panic(expected = "striped backend")]
    fn vector_workload_rejects_shared_nothing() {
        let mut cfg = ServiceWorkloadConfig::new(16, 1, 1, 0);
        cfg.dims = 2;
        cfg.objective = PlacementObjective::MaxNorm;
        cfg.backend = ServiceBackend::SharedNothing;
        let _ = run_service_workload(&cfg);
    }

    #[test]
    #[should_panic(expected = "store=exact")]
    fn vector_workload_rejects_packed_stores() {
        let mut cfg = ServiceWorkloadConfig::new(16, 1, 1, 0);
        cfg.dims = 2;
        cfg.objective = PlacementObjective::MaxNorm;
        cfg.store = StoreKind::Packed4;
        let _ = run_service_workload(&cfg);
    }

    #[test]
    fn default_config_shards_are_valid() {
        for bins in [1usize, 2, 3, 7, 8, 9, 100, 1024] {
            let cfg = ServiceWorkloadConfig::new(bins, 1, 1, 0);
            assert!(
                cfg.shards.is_power_of_two() && cfg.shards <= bins,
                "bins={bins}"
            );
            let _ = run_service_workload(&cfg);
        }
    }
}
