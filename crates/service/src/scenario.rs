//! The closed-loop placement-service workload as a
//! [`kdchoice_expt::Scenario`] named `service`.

use kdchoice_core::{PlacementObjective, StoreKind, MAX_DIMS};
use kdchoice_expt::{Axis, Fields, GridError, GridSpec, Params, Scenario, Value};
use kdchoice_prng::demand::DemandDistribution;

use crate::engine::ServiceBackend;
use crate::service::{run_service_workload, ServiceReport, ServiceWorkloadConfig};

/// The concurrent placement-service experiment family: closed-loop
/// clients hammering a sharded (k,d)-choice service, measuring placement
/// throughput and max-load/gap under contention.
///
/// **Determinism caveat** (documented deviation from the experiment
/// layer's pure-function contract): each client's request stream is a
/// pure function of `(config, seed)`, but with `threads > 1` the
/// *interleaving* of commits — and therefore throughput and, slightly,
/// the final load shape — is scheduler-driven. Conservation and shard
/// invariants are re-checked on every run and reported in the
/// `conserved` column.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceScenario;

impl Scenario for ServiceScenario {
    type Config = ServiceWorkloadConfig;
    type Record = ServiceReport;

    fn name(&self) -> &'static str {
        "service"
    }

    fn description(&self) -> &'static str {
        "concurrent placement service: closed-loop clients on a sharded (k,d)-choice store"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> ServiceReport {
        let mut config = config.clone();
        config.seed = seed;
        run_service_workload(&config)
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("n", Value::U64(config.bins as u64)),
            ("k", Value::U64(config.k as u64)),
            ("d", Value::U64(config.d as u64)),
            ("shards", Value::U64(config.shards as u64)),
            ("threads", Value::U64(config.threads as u64)),
            ("requests", Value::U64(config.requests_per_thread as u64)),
            ("window", Value::U64(config.window as u64)),
            ("backend", Value::Str(config.backend.name().into())),
            ("refresh", Value::U64(config.snapshot_refresh as u64)),
            ("store", Value::Str(config.store.name().into())),
            ("dims", Value::U64(config.dims as u64)),
            ("objective", Value::Str(config.objective.name().into())),
            ("demand", Value::Str(config.demand.name().into())),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        let max_dim_gap = record.dim_gaps.iter().cloned().fold(0.0f64, f64::max);
        vec![
            ("placements", Value::U64(record.placements)),
            ("balls_placed", Value::U64(record.balls_placed)),
            ("balls_released", Value::U64(record.balls_released)),
            ("live_balls", Value::U64(record.live_balls)),
            ("balls_per_sec", Value::F64(record.balls_per_sec)),
            ("max_load", Value::U64(u64::from(record.max_load))),
            ("gap", Value::F64(record.gap)),
            ("nu1", Value::U64(record.nu1)),
            ("conserved", Value::Bool(record.conserved)),
            ("max_dim_gap", Value::F64(max_dim_gap)),
        ]
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("n", "bins (default 2^14)"),
            Axis::new("k", "balls per placement request (default 2)"),
            Axis::new("d", "probes per placement request, d >= k (default 4)"),
            Axis::new(
                "shards",
                "lock-striped shards, power of two <= n (default 8)",
            ),
            Axis::new("threads", "concurrent client threads (default 4)"),
            Axis::new("requests", "placement requests per client (default 10000)"),
            Axis::new(
                "window",
                "live placements per client before the oldest is released; 0 = static (default 0)",
            ),
            Axis::new(
                "backend",
                "concurrency backend: striped | shared_nothing | lockfree (default striped)",
            ),
            Axis::new(
                "refresh",
                "shared_nothing snapshot republish period in mutations (default 1)",
            ),
            Axis::new(
                "store",
                "bin store: exact | packed4 | packed8 | sketch (default exact)",
            ),
            Axis::new(
                "dims",
                "demand-vector dimensionality, 1..=8 (default 1 = scalar; dims > 1 needs backend=striped store=exact)",
            ),
            Axis::new(
                "objective",
                "probe comparison key: scalar | max_norm | weighted | capacity (default scalar)",
            ),
            Axis::new(
                "demand",
                "request demand distribution: unit | uniform | correlated | anti (default unit)",
            ),
            Axis::new(
                "demand_max",
                "largest per-dimension demand of non-unit distributions (default 4)",
            ),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let bins = params.get_usize("n", 1 << 14)?;
        if bins == 0 {
            return Err(params.bad_value("n", "at least one bin"));
        }
        let k = params.get_usize("k", 2)?;
        let d = params.get_usize("d", 4)?;
        if k == 0 || d < k {
            return Err(params.bad_value("d", &format!("d >= k >= 1 (k={k})")));
        }
        let shards = params.get_usize("shards", 8.min(crate::service::prev_power_of_two(bins)))?;
        if !shards.is_power_of_two() || shards > bins {
            return Err(params.bad_value("shards", "a power of two <= n"));
        }
        let threads = params.get_usize("threads", 4)?;
        if threads == 0 {
            return Err(params.bad_value("threads", "at least one client thread"));
        }
        let backend = ServiceBackend::parse(params.get_raw("backend").unwrap_or("striped"))
            .ok_or_else(|| params.bad_value("backend", "striped | shared_nothing | lockfree"))?;
        if backend == ServiceBackend::SharedNothing && threads > bins {
            return Err(params.bad_value("threads", "threads <= n for shared_nothing"));
        }
        let snapshot_refresh = params.get_usize("refresh", 1)?;
        if snapshot_refresh == 0 {
            return Err(params.bad_value("refresh", "a period of at least 1 mutation"));
        }
        let store = StoreKind::parse(params.get_raw("store").unwrap_or("exact"))
            .ok_or_else(|| params.bad_value("store", "exact | packed4 | packed8 | sketch"))?;
        if backend == ServiceBackend::LockFree && store == StoreKind::Sketch {
            return Err(params.bad_value(
                "store",
                "exact | packed4 | packed8 for backend=lockfree (sketch counters cannot be CAS-validated)",
            ));
        }
        let dims = params.get_usize("dims", 1)?;
        if dims == 0 || dims > MAX_DIMS {
            return Err(params.bad_value("dims", &format!("1 <= dims <= {MAX_DIMS}")));
        }
        let objective =
            PlacementObjective::parse(params.get_raw("objective").unwrap_or("scalar"), dims)
                .ok_or_else(|| {
                    params.bad_value("objective", "scalar | max_norm | weighted | capacity")
                })?;
        let demand_max = params.get_u32("demand_max", 4)?;
        if demand_max == 0 {
            return Err(params.bad_value("demand_max", "a per-dimension demand of at least 1"));
        }
        let demand =
            DemandDistribution::parse(params.get_raw("demand").unwrap_or("unit"), demand_max)
                .map_err(|_| params.bad_value("demand", "unit | uniform | correlated | anti"))?;
        let config = ServiceWorkloadConfig {
            bins,
            k,
            d,
            shards,
            threads,
            requests_per_thread: params.get_usize("requests", 10_000)?,
            window: params.get_usize("window", 0)?,
            backend,
            snapshot_refresh,
            store,
            dims,
            objective,
            demand,
            seed: params.get_u64("seed", 0)?,
        };
        if config.is_vector() {
            if backend != ServiceBackend::Striped {
                return Err(params.bad_value(
                    "backend",
                    "striped (vector loads run only on the striped backend)",
                ));
            }
            if store != StoreKind::Exact {
                return Err(params.bad_value("store", "exact (vector loads need the exact store)"));
            }
        }
        Ok(config)
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str(
            "n=2^10 k=2 d=4 shards=4 threads=1,2 requests=1500 window=0,32 backend=striped,shared_nothing,lockfree store=exact,packed4",
        )
        .expect("service smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "balls/sec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_expt::{configs_from_grid, SweepReport, SweepRunner};

    #[test]
    fn grid_builds_configs_with_defaults_and_validation() {
        let grid = GridSpec::parse_str("threads=1,2,4 n=2^10 requests=100").unwrap();
        let configs = configs_from_grid(&ServiceScenario, &grid, 3).unwrap();
        assert_eq!(configs.len(), 3);
        assert_eq!(configs[2].threads, 4);
        assert_eq!(configs[0].bins, 1024);
        assert_eq!(configs[0].seed, 3);

        // Small non-power-of-two n: the shard default must round *down*
        // so the unspecified-shards config stays valid.
        for bins in [1usize, 3, 5, 6, 7, 100] {
            let grid = GridSpec::parse_str(&format!("n={bins} requests=1")).unwrap();
            let configs = configs_from_grid(&ServiceScenario, &grid, 0)
                .unwrap_or_else(|e| panic!("n={bins} must be accepted: {e}"));
            assert!(
                configs[0].shards.is_power_of_two() && configs[0].shards <= bins,
                "n={bins} got shards={}",
                configs[0].shards
            );
        }

        for bad in [
            "shards=3",
            "d=1 k=2",
            "threads=0",
            "n=0",
            "backend=psychic",
            "refresh=0",
            "store=psychic",
            "backend=shared_nothing threads=4 n=2",
            "dims=0",
            "dims=9",
            "objective=psychic",
            "demand=psychic",
            "demand_max=0",
            "dims=2 backend=shared_nothing",
            "dims=2 backend=lockfree",
            "dims=2 store=packed4",
            "demand=uniform store=sketch",
            "backend=lockfree store=sketch",
        ] {
            let grid = GridSpec::parse_str(bad).unwrap();
            assert!(
                configs_from_grid(&ServiceScenario, &grid, 0).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    /// The `dims=` axis end to end: a vector cell parses, runs the
    /// vector workload, and reports one gap per dimension in JSON.
    #[test]
    fn vector_service_cell_runs_and_reports_dim_gaps() {
        let grid = GridSpec::parse_str(
            "n=2^8 shards=2 threads=2 requests=200 window=8 dims=2 objective=max_norm demand=uniform demand_max=3",
        )
        .unwrap();
        let configs = configs_from_grid(&ServiceScenario, &grid, 7).unwrap();
        assert!(configs[0].is_vector());
        let report = ServiceScenario.run(&configs[0], 7);
        assert!(report.conserved);
        assert_eq!(report.dim_gaps.len(), 2);
        let cells = SweepRunner::new()
            .with_threads(1)
            .run_scenario(&ServiceScenario, &configs, 1);
        let sweep = SweepReport::from_cells(&ServiceScenario, &configs, &cells);
        for line in sweep.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"max_dim_gap\""));
            assert!(line.contains("\"dims\": 2"));
        }
    }

    #[test]
    fn smoke_grid_runs_and_renders_valid_json() {
        let scenario = ServiceScenario;
        let grid = GridSpec::parse_str("n=2^8 shards=2 threads=2 requests=300 window=8").unwrap();
        let configs = configs_from_grid(&scenario, &grid, 1).unwrap();
        let cells = SweepRunner::new()
            .with_threads(1)
            .run_scenario(&scenario, &configs, 2);
        let report = SweepReport::from_cells(&scenario, &configs, &cells);
        assert_eq!(report.rows.len(), 2);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"service\""));
            assert!(line.contains("\"conserved\": true"));
        }
    }
}
