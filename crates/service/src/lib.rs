//! Concurrent placement service for the (k,d)-choice process.
//!
//! The paper pitches (k,d)-choice as a primitive for real cluster
//! schedulers and storage systems (§1.3); this crate is the layer that
//! makes the primitive *servable*: a shared bin-load substrate that many
//! client threads can hit concurrently, behind the same
//! [`kdchoice_core::BinStore`] surface the single-threaded applications
//! use.
//!
//! * [`ShardedStore`] — `n` bins striped across power-of-two lock-striped
//!   shards (per-shard [`kdchoice_core::LoadVector`] + histogram),
//!   observables merged on demand. One shard, one thread ⇒ bit-identical
//!   to a plain `LoadVector` (locked by the equivalence proptest).
//! * [`PlacementService`] — the (k,d)-choice frontend: a placement
//!   request samples `d` bins across shards, takes the involved shard
//!   locks in canonical ascending order, and commits balls into the `k`
//!   least-loaded tentative slots atomically; release requests remove
//!   balls for departures (the §7 infinite/dynamic process).
//! * [`run_service_workload`] — closed-loop clients hammering the
//!   service; [`ServiceScenario`] plugs it into the workspace experiment
//!   registry as `service`.
//! * **Open-loop traffic engine** — the opposite of closed-loop clients:
//!   requests arrive on their own virtual-clock schedule
//!   ([`TrafficSchedule`]: Poisson / burst / on-off arrivals,
//!   exponential / deterministic ball lifetimes), queue FIFO behind a
//!   bounded service rate, and are drained by a **batched placement
//!   pipeline** ([`run_open_loop`]) that commits a whole batch with one
//!   lock acquisition per shard ([`ShardedStore::place_batch`]).
//!   Queueing latency is accounted per request in virtual ticks;
//!   [`OpenLoopScenario`] registers the workload as `open_loop`.
//!
//! * **Shared-nothing backend** — [`OwnedShardEngine`] replaces lock
//!   striping with ownership: contiguous bin partitions owned by one
//!   worker each, cross-shard commits routed over bounded SPSC rings,
//!   probe decisions reading relaxed-atomic load snapshots
//!   ([`kdchoice_core::SharedLoadSnapshot`]) that owners republish every
//!   `snapshot_refresh` mutations. Selected per run via
//!   [`ServiceBackend`] on [`ServiceWorkloadConfig`] / [`OpenLoopConfig`]
//!   — same configs, same scenarios, same reports as the striped path.
//!   At one thread with synchronous snapshots it is bit-identical to the
//!   striped backend (locked by `tests/backend_equivalence.rs`); the
//!   staleness-vs-gap envelope is pinned by
//!   `tests/snapshot_staleness.rs`.
//!
//! * **Lock-free CAS-bins backend** — [`AtomicStore`] drops both locks
//!   *and* ownership: one CAS-able atomic counter per bin is the ground
//!   truth, placements commit by optimistic read–decide–CAS with bounded
//!   retries (then an unconditional fallback), and releases are guarded
//!   CAS decrements that can never drive a counter negative. Selected as
//!   [`ServiceBackend::LockFree`] on the same configs and scenarios. At
//!   one thread no CAS can fail, so it is bit-identical to the striped
//!   backend (locked by `tests/backend_equivalence.rs`); under racing,
//!   conservation stays exact (`tests/lockfree_stress.rs`) and the gap
//!   keeps the Theorem 2 envelope (`tests/lockfree_envelope.rs`).
//!
//! * **Heterogeneous serving** — every request path draws probes
//!   through `kdchoice_core::ProbeDistribution` (uniform, weighted,
//!   Zipf), and stores carry optional per-bin capacities
//!   ([`ShardedStore::with_capacities`], capacity-proportional striping)
//!   with capacity-normalized observables (`max_utilization`,
//!   `utilization_gap`) merged like every other observable. Uniform
//!   probing draws the identical generator stream as before the seam
//!   existed, so all determinism locks below are unchanged by it.
//!
//! * **Vector loads** — [`run_vector_service_workload`] serves
//!   D-dimensional demand vectors over a `kdchoice_core::VectorLoad`
//!   store (striped backend, exact store only), selected through the
//!   `dims=` / `objective=` / `demand=` fields of
//!   [`ServiceWorkloadConfig`]. At `dims = 1` with the scalar objective
//!   and unit demand it is bit-identical to both scalar backends at one
//!   thread (locked by test); reports carry per-dimension gaps.
//!
//! **Determinism under concurrency:** each client thread's probe/tie-key
//! stream is a pure function of `derive_seed(seed, client)`; the
//! interleaving of commits is not reproducible. Conservation (balls in =
//! balls held + balls released) and per-shard invariants hold under any
//! interleaving and are asserted by the stress tests. The open-loop
//! engine is stronger: its arrival/commit/departure event stream and all
//! latency statistics are bit-identical across batch sizes and thread
//! counts (locked by `tests/traffic_determinism.rs`), and a
//! single-threaded batched run is bit-identical to the per-request path
//! (locked by `tests/store_equivalence.rs`). The per-module docs spell
//! the guarantees out: [`traffic`] (virtual-clock semantics), `pipeline`
//! (the 3-phase tick barrier and the exact survives-concurrency table),
//! `sharded` (striping and lock discipline).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod lockfree;
mod open_loop;
mod pipeline;
mod scenario;
mod service;
mod sharded;
pub mod traffic;

pub use engine::{OwnedShardEngine, ServiceBackend, ShardState};
pub use lockfree::{AtomicStore, PlaceScratch, StampedLoads, PLACE_RETRY_LIMIT};
pub use open_loop::OpenLoopScenario;
pub use pipeline::{
    churn_capacity, run_open_loop, OpenLoopConfig, OpenLoopReport, PipelineMode, TickSample,
};
pub use scenario::ServiceScenario;
pub use service::{
    run_service_workload, run_vector_service_workload, PlacementService, ServiceError,
    ServiceReport, ServiceWorkloadConfig,
};
pub use sharded::{Placement, ShardedStore};
pub use traffic::{
    ArrivalProcess, Lifetime, RequestTiming, TrafficConfig, TrafficError, TrafficSchedule,
};
