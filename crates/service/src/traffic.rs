//! Open-loop traffic generation on a virtual clock.
//!
//! The closed-loop workloads of PR 3 are self-pacing: clients block on
//! each placement, so the service can never fall behind. This module is
//! the opposite regime — "heavy traffic from millions of users": requests
//! arrive on their own schedule (Poisson, deterministic bursts, or an
//! on/off process), wait in a FIFO queue, are committed at a bounded
//! service rate, and the balls they place depart after a sampled
//! lifetime (the §7 infinite/dynamic process).
//!
//! Everything here runs on a **virtual clock**: time advances in integer
//! ticks, and the entire arrival/commit/departure schedule is a pure
//! function of `(TrafficConfig, seed)` — generated single-threaded,
//! before any placement happens. The placement pipeline that executes
//! the schedule (`crate::run_open_loop`) may batch requests and fan out
//! across threads, but it cannot change the event stream: that guarantee
//! is locked by the determinism proptests in
//! `tests/traffic_determinism.rs` (mirroring the `derive_seed` contract
//! of the experiment layer).
//!
//! Queueing semantics per tick `t`:
//!
//! 1. new requests arrive (the arrival process is sampled once per tick)
//!    and join the FIFO queue;
//! 2. up to [`TrafficConfig::service_rate`] queued requests are committed
//!    (oldest first), each recording `commit_tick = t`;
//! 3. every ball of a request committed at tick `c` departs at tick
//!    `c + lifetime` (lifetimes are at least one tick).
//!
//! Per-request **latency** is `commit_tick − arrival_tick`, in ticks —
//! zero while the system keeps up, growing without bound once the
//! arrival rate exceeds the service rate.

use kdchoice_prng::dist::{Exponential, Poisson};
use kdchoice_prng::Xoshiro256PlusPlus;

/// How requests arrive, per tick of the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: the number of requests arriving in a tick is
    /// `Poisson(rate)`, independently per tick (`rate > 0`, requests per
    /// tick).
    Poisson {
        /// Mean arrivals per tick.
        rate: f64,
    },
    /// Deterministic bursts: `size` requests arrive together every
    /// `period` ticks (at ticks `0, period, 2·period, …`), nothing in
    /// between. Same mean rate as `Poisson { rate: size / period }` but
    /// maximally bursty at the tick scale.
    Burst {
        /// Ticks between bursts (`≥ 1`).
        period: u32,
        /// Requests per burst.
        size: u64,
    },
    /// An on/off (interrupted Poisson) process: `Poisson(rate)` arrivals
    /// during the first `on` ticks of every `on + off` tick cycle,
    /// silence during the remaining `off` ticks. Mean rate is
    /// `rate · on / (on + off)`.
    OnOff {
        /// Mean arrivals per tick while the source is on.
        rate: f64,
        /// Length of the on phase in ticks (`≥ 1`).
        on: u32,
        /// Length of the off phase in ticks.
        off: u32,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate in requests per tick.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::Burst { period, size } => size as f64 / f64::from(period),
            // Summed in f64: `on + off` may exceed u32 on configs that
            // have not passed `validate()` yet.
            ArrivalProcess::OnOff { rate, on, off } => {
                rate * f64::from(on) / (f64::from(on) + f64::from(off))
            }
        }
    }

    /// Validates the parameters; the error names the offending field.
    pub fn validate(&self) -> Result<(), TrafficError> {
        match *self {
            ArrivalProcess::Poisson { rate } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(TrafficError::new("poisson arrival rate must be > 0"));
                }
            }
            ArrivalProcess::Burst { period, size } => {
                if period == 0 {
                    return Err(TrafficError::new("burst period must be at least 1 tick"));
                }
                if size == 0 {
                    return Err(TrafficError::new("burst size must be at least 1"));
                }
            }
            ArrivalProcess::OnOff { rate, on, off } => {
                if !(rate.is_finite() && rate > 0.0) {
                    return Err(TrafficError::new("on/off rate must be > 0"));
                }
                if on == 0 {
                    return Err(TrafficError::new("on phase must be at least 1 tick"));
                }
                if on.checked_add(off).is_none() {
                    return Err(TrafficError::new("on + off cycle overflows"));
                }
            }
        }
        Ok(())
    }
}

/// How long each request's balls stay in their bins, counted from the
/// commit tick. Lifetimes are always at least one tick, so a departure
/// is strictly later than its commit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Exponential lifetimes with the given mean (in ticks), rounded up
    /// to whole ticks.
    Exponential {
        /// Mean lifetime in ticks (`> 0`).
        mean: f64,
    },
    /// Every ball lives exactly this many ticks (`≥ 1`).
    Deterministic {
        /// Lifetime in ticks.
        ticks: u32,
    },
}

impl Lifetime {
    /// The mean lifetime in ticks.
    pub fn mean_ticks(&self) -> f64 {
        match *self {
            Lifetime::Exponential { mean } => mean,
            Lifetime::Deterministic { ticks } => f64::from(ticks),
        }
    }

    /// Validates the parameters.
    pub fn validate(&self) -> Result<(), TrafficError> {
        match *self {
            Lifetime::Exponential { mean } => {
                if !(mean.is_finite() && mean > 0.0) {
                    return Err(TrafficError::new("exponential lifetime mean must be > 0"));
                }
            }
            Lifetime::Deterministic { ticks } => {
                if ticks == 0 {
                    return Err(TrafficError::new(
                        "deterministic lifetime must be at least 1 tick",
                    ));
                }
            }
        }
        Ok(())
    }
}

/// An invalid traffic configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficError {
    what: &'static str,
}

impl TrafficError {
    fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid traffic config: {}", self.what)
    }
}

impl std::error::Error for TrafficError {}

/// Configuration of one open-loop traffic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// The ball-lifetime distribution.
    pub lifetime: Lifetime,
    /// Virtual ticks to simulate.
    pub ticks: u32,
    /// Maximum requests committed per tick — the service **capacity**
    /// the λ sweep is expressed against (`λ = mean arrival rate /
    /// service_rate`).
    pub service_rate: u32,
}

impl TrafficConfig {
    /// The offered load `λ` as a fraction of capacity: mean arrivals per
    /// tick over [`TrafficConfig::service_rate`]. Above 1 the queue —
    /// and therefore latency — grows without bound.
    pub fn lambda_factor(&self) -> f64 {
        self.arrivals.mean_rate() / f64::from(self.service_rate)
    }

    /// Validates every field.
    pub fn validate(&self) -> Result<(), TrafficError> {
        self.arrivals.validate()?;
        self.lifetime.validate()?;
        if self.ticks == 0 {
            return Err(TrafficError::new("need at least 1 tick"));
        }
        if self.service_rate == 0 {
            return Err(TrafficError::new(
                "service rate must be at least 1 per tick",
            ));
        }
        Ok(())
    }
}

/// Sentinel commit tick for requests still queued when the clock stops.
const NEVER: u32 = u32::MAX;

/// The virtual-clock timeline of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// The tick the request arrived (joined the queue).
    pub arrival_tick: u32,
    /// The tick the request was committed, or `u32::MAX` if the clock
    /// stopped while it was still queued (see
    /// [`RequestTiming::committed`]).
    pub commit_tick: u32,
    /// The sampled lifetime in ticks (`≥ 1`); balls depart at
    /// `commit_tick + lifetime`.
    pub lifetime: u32,
}

impl RequestTiming {
    /// Whether the request was committed before the clock stopped.
    pub fn committed(&self) -> bool {
        self.commit_tick != NEVER
    }

    /// Queueing latency in ticks (`commit − arrival`); `None` while
    /// uncommitted.
    pub fn latency(&self) -> Option<u32> {
        self.committed()
            .then(|| self.commit_tick - self.arrival_tick)
    }

    /// The departure tick, or `None` while uncommitted. Saturates at
    /// `u32::MAX − 1` (such balls simply never depart within any run).
    pub fn depart_tick(&self) -> Option<u32> {
        self.committed().then(|| {
            self.commit_tick
                .saturating_add(self.lifetime)
                .min(NEVER - 1)
        })
    }
}

/// A fully materialized open-loop schedule: every request's arrival,
/// commit, and departure tick, plus per-tick indices the placement
/// pipeline drains. Pure function of `(TrafficConfig, seed)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficSchedule {
    /// Per-request timings, indexed by request id (ids are assigned in
    /// arrival order — FIFO order is id order).
    pub timings: Vec<RequestTiming>,
    /// `commit_ranges[t]` is the contiguous id range committed at tick
    /// `t` (FIFO ⇒ commits are always a contiguous id window).
    pub commit_ranges: Vec<(u32, u32)>,
    /// `departures[t]` lists the ids whose balls depart at tick `t`
    /// (ascending id order within a tick).
    pub departures: Vec<Vec<u32>>,
}

impl TrafficSchedule {
    /// Generates the schedule for `config` from `seed`.
    ///
    /// Single-threaded and batch-free by construction: one RNG stream
    /// samples, per tick, the arrival count and then one lifetime per
    /// arrival. The FIFO/`service_rate` queue discipline then fixes
    /// every commit tick, so the whole event stream is independent of
    /// how the placement pipeline later executes it.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError`] if the config is invalid.
    pub fn generate(config: &TrafficConfig, seed: u64) -> Result<Self, TrafficError> {
        config.validate()?;
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        // Distributions are constructed once so the stream layout is a
        // stable part of the determinism contract.
        let poisson = match config.arrivals {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::OnOff { rate, .. } => {
                Some(Poisson::new(rate).expect("validated rate"))
            }
            ArrivalProcess::Burst { .. } => None,
        };
        let exponential = match config.lifetime {
            Lifetime::Exponential { mean } => {
                Some(Exponential::new(1.0 / mean).expect("validated mean"))
            }
            Lifetime::Deterministic { .. } => None,
        };

        let ticks = config.ticks as usize;
        let mut timings: Vec<RequestTiming> = Vec::new();
        let mut commit_ranges: Vec<(u32, u32)> = Vec::with_capacity(ticks);
        let mut departures: Vec<Vec<u32>> = vec![Vec::new(); ticks];
        let mut queue_head = 0usize; // id of the oldest uncommitted request

        for t in 0..config.ticks {
            // 1. Arrivals join the queue (and sample their lifetimes now,
            //    in id order — the stream layout batching must not change).
            let arriving = match config.arrivals {
                ArrivalProcess::Poisson { .. } => {
                    poisson.expect("poisson arrivals").sample(&mut rng)
                }
                ArrivalProcess::Burst { period, size } => {
                    if t % period == 0 {
                        size
                    } else {
                        0
                    }
                }
                ArrivalProcess::OnOff { on, off, .. } => {
                    if t % (on + off) < on {
                        poisson.expect("on/off arrivals").sample(&mut rng)
                    } else {
                        0
                    }
                }
            };
            for _ in 0..arriving {
                let lifetime = match config.lifetime {
                    Lifetime::Exponential { .. } => {
                        let x = exponential.expect("exponential lifetimes").sample(&mut rng);
                        (x.ceil() as u32).max(1)
                    }
                    Lifetime::Deterministic { ticks } => ticks,
                };
                timings.push(RequestTiming {
                    arrival_tick: t,
                    commit_tick: NEVER,
                    lifetime,
                });
            }

            // 2. Commit up to service_rate queued requests, oldest first.
            let serve = (timings.len() - queue_head).min(config.service_rate as usize);
            let start = queue_head as u32;
            for _ in 0..serve {
                let timing = &mut timings[queue_head];
                timing.commit_tick = t;
                if let Some(depart) = timing.depart_tick() {
                    if (depart as usize) < ticks {
                        departures[depart as usize].push(queue_head as u32);
                    }
                }
                queue_head += 1;
            }
            commit_ranges.push((start, queue_head as u32));
        }

        Ok(Self {
            timings,
            commit_ranges,
            departures,
        })
    }

    /// Total requests that arrived.
    pub fn arrived(&self) -> u64 {
        self.timings.len() as u64
    }

    /// Requests committed before the clock stopped.
    pub fn committed(&self) -> u64 {
        self.commit_ranges
            .last()
            .map_or(0, |&(_, end)| u64::from(end))
    }

    /// Requests still queued when the clock stopped (`arrived −
    /// committed`) — the overload backlog.
    pub fn backlog(&self) -> u64 {
        self.arrived() - self.committed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poisson_config(rate: f64, ticks: u32, service_rate: u32) -> TrafficConfig {
        TrafficConfig {
            arrivals: ArrivalProcess::Poisson { rate },
            lifetime: Lifetime::Exponential { mean: 8.0 },
            ticks,
            service_rate,
        }
    }

    #[test]
    fn validation_rejects_bad_params() {
        for bad in [
            ArrivalProcess::Poisson { rate: 0.0 },
            ArrivalProcess::Poisson { rate: f64::NAN },
            ArrivalProcess::Burst { period: 0, size: 1 },
            ArrivalProcess::Burst { period: 4, size: 0 },
            ArrivalProcess::OnOff {
                rate: -1.0,
                on: 1,
                off: 1,
            },
            ArrivalProcess::OnOff {
                rate: 1.0,
                on: 0,
                off: 1,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        assert!(Lifetime::Exponential { mean: 0.0 }.validate().is_err());
        assert!(Lifetime::Deterministic { ticks: 0 }.validate().is_err());
        let mut cfg = poisson_config(2.0, 0, 1);
        assert!(cfg.validate().is_err());
        cfg.ticks = 1;
        cfg.service_rate = 0;
        assert!(cfg.validate().is_err());
        cfg.service_rate = 1;
        assert!(cfg.validate().is_ok());
        let err = TrafficSchedule::generate(&poisson_config(0.0, 1, 1), 0).unwrap_err();
        assert!(err.to_string().contains("arrival rate"));
    }

    #[test]
    fn mean_rates() {
        assert_eq!(ArrivalProcess::Poisson { rate: 3.5 }.mean_rate(), 3.5);
        assert_eq!(
            ArrivalProcess::Burst {
                period: 4,
                size: 10
            }
            .mean_rate(),
            2.5
        );
        assert_eq!(
            ArrivalProcess::OnOff {
                rate: 4.0,
                on: 1,
                off: 3
            }
            .mean_rate(),
            1.0
        );
        assert_eq!(poisson_config(2.0, 10, 4).lambda_factor(), 0.5);
        // mean_rate is callable before validate(): the u32 cycle sum may
        // overflow, but the f64 arithmetic must not.
        let huge = ArrivalProcess::OnOff {
            rate: 1.0,
            on: u32::MAX,
            off: 1,
        };
        assert!(huge.mean_rate().is_finite());
        assert!((huge.mean_rate() - 1.0).abs() < 1e-9);
        assert!(huge.validate().is_err(), "cycle overflow still rejected");
    }

    #[test]
    fn fifo_commit_ranges_are_contiguous_and_capacity_bounded() {
        let cfg = poisson_config(3.0, 200, 2);
        let s = TrafficSchedule::generate(&cfg, 7).unwrap();
        assert_eq!(s.commit_ranges.len(), 200);
        let mut prev_end = 0u32;
        for (t, &(start, end)) in s.commit_ranges.iter().enumerate() {
            assert_eq!(start, prev_end, "tick {t}: commits must be FIFO-contiguous");
            assert!(end - start <= 2, "tick {t}: served more than service_rate");
            for id in start..end {
                let timing = s.timings[id as usize];
                assert_eq!(timing.commit_tick, t as u32);
                assert!(timing.arrival_tick <= t as u32, "committed before arrival");
            }
            prev_end = end;
        }
        assert_eq!(s.committed() + s.backlog(), s.arrived());
        // λ = 1.5: the queue must actually fall behind.
        assert!(s.backlog() > 0, "overloaded run should leave a backlog");
    }

    #[test]
    fn latencies_zero_when_underloaded_positive_when_overloaded() {
        let calm = TrafficSchedule::generate(&poisson_config(0.5, 300, 4), 3).unwrap();
        assert!(calm
            .timings
            .iter()
            .filter(|t| t.committed())
            .all(|t| t.latency() == Some(0)));

        let slammed = TrafficSchedule::generate(&poisson_config(8.0, 300, 4), 3).unwrap();
        let max_latency = slammed
            .timings
            .iter()
            .filter_map(|t| t.latency())
            .max()
            .unwrap();
        assert!(max_latency > 10, "overload must build queueing delay");
    }

    #[test]
    fn departures_listed_at_commit_plus_lifetime() {
        let cfg = TrafficConfig {
            arrivals: ArrivalProcess::Poisson { rate: 2.0 },
            lifetime: Lifetime::Deterministic { ticks: 5 },
            ticks: 60,
            service_rate: 3,
        };
        let s = TrafficSchedule::generate(&cfg, 11).unwrap();
        let mut seen = 0u64;
        for (t, ids) in s.departures.iter().enumerate() {
            for &id in ids {
                let timing = s.timings[id as usize];
                assert_eq!(timing.depart_tick(), Some(t as u32));
                assert_eq!(t as u32, timing.commit_tick + 5);
                seen += 1;
            }
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids sorted per tick");
        }
        let expected: u64 = s
            .timings
            .iter()
            .filter(|t| t.depart_tick().is_some_and(|d| (d as usize) < 60))
            .count() as u64;
        assert_eq!(seen, expected);
    }

    #[test]
    fn burst_process_is_deterministic_and_consumes_no_rng() {
        let cfg = TrafficConfig {
            arrivals: ArrivalProcess::Burst { period: 8, size: 5 },
            lifetime: Lifetime::Deterministic { ticks: 3 },
            ticks: 33,
            service_rate: 2,
        };
        // Fully deterministic traffic: any two seeds agree.
        let a = TrafficSchedule::generate(&cfg, 1).unwrap();
        let b = TrafficSchedule::generate(&cfg, 999).unwrap();
        assert_eq!(a, b);
        // 5 bursts (ticks 0, 8, 16, 24, 32) of 5 requests.
        assert_eq!(a.arrived(), 25);
        assert!(a.timings.iter().all(|t| t.arrival_tick % 8 == 0));
    }

    #[test]
    fn on_off_is_silent_in_the_off_phase() {
        let cfg = TrafficConfig {
            arrivals: ArrivalProcess::OnOff {
                rate: 6.0,
                on: 4,
                off: 12,
            },
            lifetime: Lifetime::Exponential { mean: 4.0 },
            ticks: 160,
            service_rate: 100,
        };
        let s = TrafficSchedule::generate(&cfg, 5).unwrap();
        assert!(s.arrived() > 0);
        for timing in &s.timings {
            assert!(
                timing.arrival_tick % 16 < 4,
                "arrival at tick {} falls in the off phase",
                timing.arrival_tick
            );
        }
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let cfg = poisson_config(4.0, 100, 3);
        let a = TrafficSchedule::generate(&cfg, 42).unwrap();
        let b = TrafficSchedule::generate(&cfg, 42).unwrap();
        assert_eq!(a, b);
        let c = TrafficSchedule::generate(&cfg, 43).unwrap();
        assert_ne!(a, c, "400-odd Poisson draws colliding is ~impossible");
    }
}
