//! The lock-free CAS-bins backend: one `AtomicU32` per bin, placements
//! committed by optimistic read–decide–CAS sequences, no mutexes and no
//! ownership partition.
//!
//! ## Why a third backend
//!
//! The lock-striped store pays mutex traffic per request and the
//! shared-nothing engine pays ring routing plus snapshot staleness; the
//! (k,d)-choice decision itself only needs *approximate* load reads (the
//! staleness-vs-gap sweep measures exactly that tolerance). So the
//! natural third point in the design space is a flat array of atomic
//! counters: probe reads are racy by construction, and a commit succeeds
//! only if the probed bins still hold the loads the decision saw.
//!
//! ## The optimistic commit protocol
//!
//! One placement request on [`AtomicStore`] runs:
//!
//! 1. **Freeze** — read each distinct probed bin's counter once
//!    (`Relaxed`) into a private frozen view.
//! 2. **Decide** — run the shared [`decide_k_least`] kernel against the
//!    frozen view (identical probe sort, slot expansion, tie-key RNG
//!    consumption, and `select_nth` pivot as both other backends).
//! 3. **Commit** — for each winner bin, `compare_exchange(frozen,
//!    frozen + multiplicity)`. A lost race rolls back the bins already
//!    committed in this attempt, counts one lost race, and restarts from
//!    step 1 with fresh reads (and fresh tie keys from the request's own
//!    private RNG stream — no other request's stream is perturbed).
//! 4. **Bounded retries** — after [`PLACE_RETRY_LIMIT`] lost races the
//!    request stops validating and commits with unconditional
//!    `fetch_add`, which cannot fail: every request terminates, and a
//!    CAS failure implies some *other* request committed, so the system
//!    as a whole is lock-free.
//!
//! Releases are per-ball guarded CAS decrements: the current value is
//! read, asserted positive (a zero here means a double release — the
//! counter is never allowed to go negative, let alone wrap), and
//! decremented only if unchanged.
//!
//! ## Memory-ordering contract
//!
//! * Decision reads are `Relaxed`: a stale probe read only degrades
//!   decision quality, never correctness, and the Theorem 2 envelope
//!   under racing is pinned by `tests/lockfree_envelope.rs`.
//! * Commit CAS / `fetch_add` / `fetch_sub` are `AcqRel`: the successful
//!   CAS is the linearization point of the placement, and a thread that
//!   later observes the new count also observes everything the committer
//!   did before it.
//! * The operation counters behind [`AtomicStore::stamped_snapshot`] are
//!   `SeqCst`, so "no operation overlapped the scan" is a statement
//!   about one total order, not per-variable luck.
//!
//! ## Which determinism survives racing
//!
//! | Quantity | 1 thread | any threads |
//! |---|---|---|
//! | per-request probes / tie keys | pure in `(seed, id)` | **unchanged** (CAS never loses, so no re-decides) / re-decides draw extra keys from the request's own stream only |
//! | final state vs striped | **bit-identical** (same kernel, same streams, CAS ≡ plain write) | interleaving-dependent |
//! | ball conservation, no negative loads | exact | **exact** (CAS-validated; checked every run) |
//! | gap envelope (Theorem 2) | exact statistics | statistical, asserted at 1/2/4/8 threads |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, OnceLock};
use std::time::Instant;

use kdchoice_core::{
    decide_k_least, BinStore, LoadView, ProbeDistribution, SharedLoadSnapshot, StoreKind,
};
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};
use rand::RngCore;

use crate::pipeline::{want_sample, worker_slice, DriveOutcome, OpenLoopConfig, TickSample};
use crate::service::{ServiceReport, ServiceWorkloadConfig};
use crate::sharded::Placement;
use crate::traffic::TrafficSchedule;

/// Lost CAS races a placement tolerates before it stops validating and
/// commits unconditionally (see the module docs). Small on purpose: the
/// fallback is what bounds a request's worst case, and the stress suite
/// asserts how rarely it fires.
pub const PLACE_RETRY_LIMIT: usize = 8;

/// How many scan attempts [`AtomicStore::stamped_snapshot`] makes before
/// returning a snapshot marked inconsistent.
const SNAPSHOT_ATTEMPTS: usize = 8;

/// A merged load scan stamped with the store's operation generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StampedLoads {
    /// Completed-operation count at the time of the scan — a generation
    /// stamp that two consistent snapshots can be compared by.
    pub generation: u64,
    /// Per-bin loads in bin-index order.
    pub loads: Vec<u32>,
    /// Whether the scan provably overlapped no place/release operation
    /// (no operation started or completed while it ran). An inconsistent
    /// scan is still a valid interleaving of per-bin atomic reads.
    pub consistent: bool,
}

/// The lock-free CAS-bins store: a [`SharedLoadSnapshot`] promoted from
/// published-copy to **ground truth**, mutated only through CAS/RMW.
///
/// Unlike [`crate::ShardedStore`] (exact reads under locks) and the
/// owned engine (stale snapshot reads, exact owned truth), here the
/// atomic counters are the only state: reads are racy, commits are
/// validated. Packed [`StoreKind`]s are honored as a **decision-view
/// ceiling**: the counters stay exact (conservation is never quantized),
/// but [`LoadView::view_load`] clamps at the kind's publish ceiling
/// `2^b − 1`, reproducing what a packed snapshot would let the decision
/// see. [`StoreKind::Sketch`] is rejected — estimated counters cannot be
/// CAS-validated.
#[derive(Debug)]
pub struct AtomicStore {
    truth: SharedLoadSnapshot,
    capacities: Option<Vec<u32>>,
    total_capacity: u64,
    /// Decision-view clamp (`u32::MAX` for exact kinds).
    ceiling: u32,
    kind: StoreKind,
    /// Operations (place/release/trait mutations) that have started.
    ops_started: AtomicU64,
    /// Operations that have finished every counter write.
    ops_completed: AtomicU64,
    /// CAS commits lost to a concurrent interferer (places + releases).
    lost_races: AtomicU64,
    /// Placements that exhausted [`PLACE_RETRY_LIMIT`] and committed
    /// through the unconditional fallback.
    fallback_commits: AtomicU64,
}

/// Reusable per-worker scratch for [`AtomicStore::place_with`] — keeps
/// the hot path free of allocations other than the returned
/// [`Placement`] itself.
#[derive(Debug, Default)]
pub struct PlaceScratch {
    sorted: Vec<usize>,
    slots: Vec<(u32, u64, usize)>,
    distinct: Vec<usize>,
    frozen: Vec<u32>,
    mult: Vec<u32>,
}

impl PlaceScratch {
    /// Empty scratch; buffers grow to `d` entries on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The decide-phase view of one placement attempt: the loads frozen at
/// read time, clamped at the store's decision ceiling. Deciding against
/// frozen reads is what makes the subsequent CAS expectations exactly
/// the values the decision saw.
struct FrozenView<'a> {
    n: usize,
    /// Distinct probed bins, ascending (binary-searchable).
    bins: &'a [usize],
    loads: &'a [u32],
    ceiling: u32,
}

impl LoadView for FrozenView<'_> {
    #[inline]
    fn view_n(&self) -> usize {
        self.n
    }

    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        let i = self
            .bins
            .binary_search(&bin)
            .expect("decide reads only probed bins");
        self.loads[i].min(self.ceiling)
    }
}

impl AtomicStore {
    /// Creates an all-empty exact store over `n` homogeneous bins.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        Self::build(n, None, StoreKind::Exact)
    }

    /// [`AtomicStore::new`] with a decision-view [`StoreKind`].
    ///
    /// # Panics
    ///
    /// As [`AtomicStore::new`], plus [`StoreKind::Sketch`] (estimated
    /// counters cannot be CAS-validated).
    pub fn with_kind(n: usize, kind: StoreKind) -> Self {
        Self::build(n, None, kind)
    }

    /// [`AtomicStore::new`] with per-bin capacities (the heterogeneous
    /// cluster); `capacities.len()` must equal `n`.
    ///
    /// # Panics
    ///
    /// As [`AtomicStore::new`], plus mismatched capacity length or a
    /// zero capacity.
    pub fn with_capacities(n: usize, capacities: &[u32]) -> Self {
        Self::build(n, Some(capacities), StoreKind::Exact)
    }

    /// [`AtomicStore::with_capacities`] with a decision-view
    /// [`StoreKind`].
    ///
    /// # Panics
    ///
    /// The union of [`AtomicStore::with_kind`] and
    /// [`AtomicStore::with_capacities`].
    pub fn with_kind_capacities(n: usize, capacities: &[u32], kind: StoreKind) -> Self {
        Self::build(n, Some(capacities), kind)
    }

    fn build(n: usize, capacities: Option<&[u32]>, kind: StoreKind) -> Self {
        assert!(
            kind != StoreKind::Sketch,
            "lock-free backend needs CAS-able exact counters: store=sketch is not supported"
        );
        if let Some(caps) = capacities {
            assert_eq!(caps.len(), n, "need exactly one capacity per bin");
            assert!(caps.iter().all(|&c| c >= 1), "capacities must be >= 1");
        }
        Self {
            truth: SharedLoadSnapshot::new(n),
            total_capacity: capacities
                .map_or(n as u64, |caps| caps.iter().map(|&c| u64::from(c)).sum()),
            capacities: capacities.map(<[u32]>::to_vec),
            ceiling: kind.bits().map_or(u32::MAX, |b| (1u32 << b) - 1),
            kind,
            ops_started: AtomicU64::new(0),
            ops_completed: AtomicU64::new(0),
            lost_races: AtomicU64::new(0),
            fallback_commits: AtomicU64::new(0),
        }
    }

    /// The decision-view [`StoreKind`] (the counters themselves are
    /// always exact).
    pub fn store_kind(&self) -> StoreKind {
        self.kind
    }

    /// CAS commits lost to concurrent interferers so far (places and
    /// releases combined).
    pub fn lost_races(&self) -> u64 {
        self.lost_races.load(Ordering::Relaxed)
    }

    /// Placements that fell back to unconditional commits after
    /// [`PLACE_RETRY_LIMIT`] lost races.
    pub fn fallback_commits(&self) -> u64 {
        self.fallback_commits.load(Ordering::Relaxed)
    }

    #[inline]
    fn begin_op(&self) {
        self.ops_started.fetch_add(1, Ordering::SeqCst);
    }

    #[inline]
    fn end_op(&self) {
        self.ops_completed.fetch_add(1, Ordering::SeqCst);
    }

    /// Serves one placement request with caller-provided scratch: probes
    /// are sorted, decided through [`decide_k_least`] against a frozen
    /// read of the probed counters, and committed by per-bin CAS (see
    /// the module docs for the retry/fallback protocol). The returned
    /// heights are CAS-validated true heights.
    ///
    /// RNG consumption per attempt is identical to
    /// `ShardedStore::place_k_least`; at one thread no CAS can fail, so
    /// the stream — and the placement — is bit-identical to the striped
    /// backend's.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > probes.len()`, or any probe is out of
    /// range.
    pub fn place_with<R: RngCore + ?Sized>(
        &self,
        probes: &[usize],
        k: usize,
        rng: &mut R,
        scratch: &mut PlaceScratch,
    ) -> Placement {
        let n = self.truth.len();
        scratch.sorted.clear();
        scratch.sorted.extend_from_slice(probes);
        scratch.sorted.sort_unstable();
        if let Some(&last) = scratch.sorted.last() {
            assert!(last < n, "probed bin {last} out of range (n={n})");
        }
        self.begin_op();
        let mut attempt = 0usize;
        loop {
            // Freeze: one Relaxed read per distinct probed bin, prefetched
            // as a batch first (memory-level parallelism, no RNG use).
            scratch.distinct.clear();
            for &bin in &scratch.sorted {
                if scratch.distinct.last() != Some(&bin) {
                    scratch.distinct.push(bin);
                }
            }
            for &bin in &scratch.distinct {
                self.truth.prefetch(bin);
            }
            scratch.frozen.clear();
            scratch
                .frozen
                .extend(scratch.distinct.iter().map(|&bin| self.truth.get(bin)));

            // Decide against the frozen view: the CAS expectations below
            // are exactly the loads the decision saw.
            let view = FrozenView {
                n,
                bins: &scratch.distinct,
                loads: &scratch.frozen,
                ceiling: self.ceiling,
            };
            let mut bins = Vec::with_capacity(k);
            decide_k_least(
                &view,
                &scratch.sorted,
                k,
                rng,
                &mut scratch.slots,
                &mut bins,
            );
            scratch.mult.clear();
            scratch.mult.resize(scratch.distinct.len(), 0);
            for &bin in &bins {
                let i = scratch
                    .distinct
                    .binary_search(&bin)
                    .expect("winner bins come from the probed set");
                scratch.mult[i] += 1;
            }

            // Commit: validate-and-swap per winner bin; past the retry
            // limit, commit unconditionally (fetch_add cannot fail).
            let fallback = attempt >= PLACE_RETRY_LIMIT;
            let mut max_height = 0u32;
            let mut lost_at = None;
            for i in 0..scratch.distinct.len() {
                let m = scratch.mult[i];
                if m == 0 {
                    continue;
                }
                let bin = scratch.distinct[i];
                if fallback {
                    max_height = max_height.max(self.truth.fetch_add(bin, m) + m);
                } else {
                    let frozen = scratch.frozen[i];
                    match self.truth.compare_exchange(bin, frozen, frozen + m) {
                        Ok(_) => max_height = max_height.max(frozen + m),
                        Err(_) => {
                            lost_at = Some(i);
                            break;
                        }
                    }
                }
            }
            let Some(lost_at) = lost_at else {
                if fallback {
                    self.fallback_commits.fetch_add(1, Ordering::Relaxed);
                }
                self.end_op();
                return Placement { bins, max_height };
            };
            // Lost the race: undo this attempt's earlier commits (our own
            // balls only, so the guarded subtraction cannot underflow),
            // then re-read and re-decide.
            for j in 0..lost_at {
                if scratch.mult[j] > 0 {
                    self.truth.fetch_sub(scratch.distinct[j], scratch.mult[j]);
                }
            }
            self.lost_races.fetch_add(1, Ordering::Relaxed);
            attempt += 1;
        }
    }

    /// [`AtomicStore::place_with`] with store-owned temporary scratch —
    /// the drop-in analogue of `ShardedStore::place_k_least` for callers
    /// off the hot path.
    pub fn place_k_least<R: RngCore + ?Sized>(
        &self,
        probes: &[usize],
        k: usize,
        rng: &mut R,
    ) -> Placement {
        self.place_with(probes, k, rng, &mut PlaceScratch::new())
    }

    /// Releases one ball per entry of `bins` (a previous placement's
    /// destination list) by guarded CAS decrements. Retries on lost
    /// races are unbounded but lock-free: each failure means another
    /// operation committed.
    ///
    /// # Panics
    ///
    /// Panics if any bin is out of range or its counter is already zero
    /// (a double release — counters never go negative).
    pub fn release(&self, bins: &[usize]) {
        self.begin_op();
        for &bin in bins {
            loop {
                let current = self.truth.get(bin);
                assert!(
                    current > 0,
                    "release from empty bin {bin}: double release or unplaced ball"
                );
                if self
                    .truth
                    .compare_exchange(bin, current, current - 1)
                    .is_ok()
                {
                    break;
                }
                self.lost_races.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.end_op();
    }

    /// Scans the counters into a generation-stamped snapshot, retrying
    /// up to a few times for a scan that provably overlapped no
    /// operation (`consistent`). At a quiescent point (all workers
    /// parked or joined) the first scan is always consistent and exact.
    pub fn stamped_snapshot(&self) -> StampedLoads {
        let n = self.truth.len();
        let mut loads = vec![0u32; n];
        for attempt in 0..SNAPSHOT_ATTEMPTS {
            let completed_before = self.ops_completed.load(Ordering::SeqCst);
            for (bin, slot) in loads.iter_mut().enumerate() {
                *slot = self.truth.get(bin);
            }
            let started_after = self.ops_started.load(Ordering::SeqCst);
            // Every operation started by scan-end had completed before
            // scan-begin <=> none overlapped the scan.
            if completed_before == started_after || attempt + 1 == SNAPSHOT_ATTEMPTS {
                return StampedLoads {
                    generation: completed_before,
                    loads,
                    consistent: completed_before == started_after,
                };
            }
        }
        unreachable!("the loop always returns by the last attempt");
    }

    /// Verifies the store's invariants, returning `true` when all hold:
    /// no operation left in flight, a consistent stamped scan, counters
    /// that sum to `total_balls`, and a histogram covering exactly `n`
    /// bins. Meant for quiescent points (every driver checks it at end
    /// of run); mid-race it may fail spuriously on the in-flight check
    /// but never falsely pass a corrupted store.
    pub fn check_invariants(&self) -> bool {
        let started = self.ops_started.load(Ordering::SeqCst);
        let completed = self.ops_completed.load(Ordering::SeqCst);
        let snap = self.stamped_snapshot();
        let total: u64 = snap.loads.iter().map(|&l| u64::from(l)).sum();
        let histogram = self.histogram();
        let bins: u64 = histogram.iter().sum();
        let weighted: u64 = histogram
            .iter()
            .enumerate()
            .map(|(l, &c)| c * l as u64)
            .sum();
        started == completed
            && snap.consistent
            && total == self.total_balls()
            && bins == self.truth.len() as u64
            && weighted == total
    }
}

impl LoadView for AtomicStore {
    #[inline]
    fn view_n(&self) -> usize {
        self.truth.len()
    }

    /// The *decision* view: the live counter clamped at the store
    /// kind's publish ceiling (exact kinds never clamp).
    #[inline]
    fn view_load(&self, bin: usize) -> u32 {
        self.truth.get(bin).min(self.ceiling)
    }

    #[inline]
    fn prefetch(&self, bin: usize) {
        self.truth.prefetch(bin);
    }
}

impl BinStore for AtomicStore {
    fn n(&self) -> usize {
        self.truth.len()
    }

    /// The exact live counter (never clamped — clamping is a decision-
    /// view concern, see [`LoadView::view_load`]).
    fn load(&self, bin: usize) -> u32 {
        self.truth.get(bin)
    }

    fn add_ball(&mut self, bin: usize) -> u32 {
        self.begin_op();
        let height = self.truth.fetch_add(bin, 1) + 1;
        self.end_op();
        height
    }

    fn remove_ball(&mut self, bin: usize) -> u32 {
        self.begin_op();
        let height = self.truth.fetch_sub(bin, 1);
        self.end_op();
        height
    }

    fn max_load(&self) -> u32 {
        (0..self.truth.len())
            .map(|bin| self.truth.get(bin))
            .max()
            .unwrap_or(0)
    }

    fn total_balls(&self) -> u64 {
        (0..self.truth.len())
            .map(|bin| u64::from(self.truth.get(bin)))
            .sum()
    }

    fn nu(&self, y: u32) -> u64 {
        if y == 0 {
            return self.truth.len() as u64;
        }
        (0..self.truth.len())
            .filter(|&bin| self.truth.get(bin) >= y)
            .count() as u64
    }

    fn capacity(&self, bin: usize) -> u32 {
        assert!(bin < self.truth.len(), "bin {bin} out of range");
        self.capacities.as_ref().map_or(1, |caps| caps[bin])
    }

    fn total_capacity(&self) -> u64 {
        self.total_capacity
    }

    fn max_utilization(&self) -> f64 {
        match &self.capacities {
            None => f64::from(self.max_load()),
            Some(caps) => (0..self.truth.len())
                .map(|bin| f64::from(self.truth.get(bin)) / f64::from(caps[bin]))
                .fold(0.0, f64::max),
        }
    }

    fn copy_loads_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend((0..self.truth.len()).map(|bin| self.truth.get(bin)));
    }

    fn histogram(&self) -> Vec<u64> {
        let mut histogram = vec![0u64; self.max_load() as usize + 1];
        for bin in 0..self.truth.len() {
            histogram[self.truth.get(bin) as usize] += 1;
        }
        histogram
    }
}

/// One relaxed scan of live balls and max load for the tick series.
fn sample(store: &AtomicStore, tick: u32) -> TickSample {
    let n = store.n();
    let mut live = 0u64;
    let mut max = 0u32;
    for bin in 0..n {
        let load = BinStore::load(store, bin);
        live += u64::from(load);
        max = max.max(load);
    }
    TickSample {
        tick,
        live_balls: live,
        max_load: max,
        gap: f64::from(max) - live as f64 / n as f64,
    }
}

/// The shared read-only context of one lock-free open-loop run. Both
/// pipeline modes run the identical per-request path — there are no
/// locks to amortize, so batching has nothing to batch.
struct LockFreePipeline<'a> {
    store: &'a AtomicStore,
    probes: &'a ProbeDistribution,
    n: usize,
    schedule: &'a TrafficSchedule,
    slots: &'a [OnceLock<Placement>],
    k: usize,
    d: usize,
    config: &'a OpenLoopConfig,
}

impl LockFreePipeline<'_> {
    /// Commits requests `[range.0, range.1)` in id order: per-request
    /// RNG from `(seed, id)`, `d` probe draws, then the CAS-committed
    /// placement — the same stream as the striped per-request path.
    fn commit(&self, range: (u32, u32), probes: &mut Vec<usize>, scratch: &mut PlaceScratch) {
        for id in range.0..range.1 {
            let mut rng = Xoshiro256PlusPlus::from_u64(self.config.request_seed(id));
            probes.clear();
            probes.extend((0..self.d).map(|_| self.probes.sample(&mut rng, self.n)));
            let placement = self.store.place_with(probes, self.k, &mut rng, scratch);
            assert!(self.slots[id as usize].set(placement).is_ok());
        }
    }

    /// Releases one worker's share of tick `t`'s departures.
    fn release_slice(&self, t: usize, workers: usize, w: usize) {
        let departures = &self.schedule.departures[t];
        let (lo, hi) = worker_slice((0, departures.len() as u32), workers, w);
        for &id in &departures[lo as usize..hi as usize] {
            let placement = self.slots[id as usize]
                .get()
                .expect("departure precedes commit");
            self.store.release(&placement.bins);
        }
    }
}

/// Drives an open-loop schedule through the lock-free store: single
/// thread inline, or persistent workers under the same 3-phase tick
/// barrier as the striped driver (releases, commits, quiescent sample).
/// `snapshot_refresh` is ignored — the counters *are* the truth, so
/// there is nothing to republish; staleness here comes from racing, not
/// from a refresh period.
pub(crate) fn drive_open_loop_lockfree(
    config: &OpenLoopConfig,
    schedule: &TrafficSchedule,
) -> DriveOutcome {
    let store = match &config.capacities {
        None => AtomicStore::with_kind(config.bins, config.store),
        Some(caps) => AtomicStore::with_kind_capacities(config.bins, caps, config.store),
    };
    let slots: Vec<OnceLock<Placement>> = (0..schedule.timings.len())
        .map(|_| OnceLock::new())
        .collect();
    let pipeline = LockFreePipeline {
        store: &store,
        probes: &config.probes,
        n: config.bins,
        schedule,
        slots: &slots,
        k: config.k,
        d: config.d,
        config,
    };

    let ticks = config.traffic.ticks as usize;
    let mut series: Vec<TickSample> = Vec::with_capacity(ticks / config.sample_every as usize + 2);

    let start = Instant::now();
    if config.threads == 1 {
        let mut probes = Vec::new();
        let mut scratch = PlaceScratch::new();
        for t in 0..ticks {
            pipeline.release_slice(t, 1, 0);
            pipeline.commit(schedule.commit_ranges[t], &mut probes, &mut scratch);
            if want_sample(t, config.sample_every, ticks) {
                series.push(sample(&store, t as u32));
            }
        }
    } else {
        let barrier = Barrier::new(config.threads + 1);
        std::thread::scope(|scope| {
            for w in 0..config.threads {
                let pipeline = &pipeline;
                let barrier = &barrier;
                let workers = config.threads;
                scope.spawn(move || {
                    let mut probes = Vec::new();
                    let mut scratch = PlaceScratch::new();
                    for t in 0..ticks {
                        barrier.wait();
                        pipeline.release_slice(t, workers, w);
                        barrier.wait();
                        let range = worker_slice(pipeline.schedule.commit_ranges[t], workers, w);
                        pipeline.commit(range, &mut probes, &mut scratch);
                        barrier.wait();
                    }
                });
            }
            for t in 0..ticks {
                barrier.wait(); // workers release tick t's departures
                barrier.wait(); // workers commit tick t's requests
                barrier.wait(); // tick t fully applied
                if want_sample(t, config.sample_every, ticks) {
                    // Workers are parked at the next tick's first
                    // barrier (or done): the counters are quiescent.
                    series.push(sample(&store, t as u32));
                }
            }
        });
    }
    let wall_secs = start.elapsed().as_secs_f64();

    DriveOutcome {
        series,
        wall_secs,
        live_balls: store.total_balls(),
        final_histogram: store.histogram(),
        final_util_gap: store.utilization_gap(),
        total_capacity: BinStore::total_capacity(&store),
        invariants_ok: store.check_invariants(),
    }
}

/// Runs the closed-loop service workload on the lock-free store: the
/// same client loop as the striped backend (`derive_seed(seed, t)`
/// streams, windowed releases), every client hammering one shared
/// [`AtomicStore`] with no locks anywhere. `shards` and
/// `snapshot_refresh` are ignored — there is nothing to stripe and
/// nothing to republish.
pub(crate) fn run_service_workload_lockfree(config: &ServiceWorkloadConfig) -> ServiceReport {
    assert!(config.threads > 0, "need at least one client thread");
    assert!(
        config.k >= 1 && config.k <= config.d,
        "need 1 <= k <= d (k={}, d={})",
        config.k,
        config.d
    );
    let store = AtomicStore::with_kind(config.bins, config.store);

    let start = Instant::now();
    let released_counts: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|t| {
                let store = &store;
                scope.spawn(move || {
                    let mut rng = Xoshiro256PlusPlus::from_u64(derive_seed(config.seed, t as u64));
                    let mut probes = vec![0usize; config.d];
                    let mut scratch = PlaceScratch::new();
                    let mut live: std::collections::VecDeque<Placement> =
                        std::collections::VecDeque::new();
                    let mut released = 0u64;
                    for _ in 0..config.requests_per_thread {
                        for p in probes.iter_mut() {
                            *p = ProbeDistribution::Uniform.sample(&mut rng, config.bins);
                        }
                        let placement = store.place_with(&probes, config.k, &mut rng, &mut scratch);
                        if config.window > 0 {
                            live.push_back(placement);
                            if live.len() > config.window {
                                let oldest = live.pop_front().expect("window > 0");
                                released += oldest.bins.len() as u64;
                                store.release(&oldest.bins);
                            }
                        }
                    }
                    released
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread must not panic"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let placements = (config.threads * config.requests_per_thread) as u64;
    let balls_placed = placements * config.k as u64;
    let balls_released: u64 = released_counts.iter().sum();
    let live_balls = store.total_balls();
    let conserved = live_balls == balls_placed - balls_released && store.check_invariants();
    let gap = store.gap();
    ServiceReport {
        placements,
        balls_placed,
        balls_released,
        live_balls,
        wall_secs,
        placements_per_sec: placements as f64 / wall_secs,
        balls_per_sec: balls_placed as f64 / wall_secs,
        max_load: store.max_load(),
        gap,
        nu1: store.nu(1),
        conserved,
        dim_gaps: vec![gap],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::LoadVector;

    #[test]
    fn place_and_release_round_trip() {
        let store = AtomicStore::new(16);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut scratch = PlaceScratch::new();
        let p = store.place_with(&[3, 7, 3, 11], 2, &mut rng, &mut scratch);
        assert_eq!(p.bins.len(), 2);
        assert_eq!(store.total_balls(), 2);
        assert!(p.max_height >= 1);
        store.release(&p.bins);
        assert_eq!(store.total_balls(), 0);
        assert_eq!(store.lost_races(), 0, "no contention at one thread");
        assert_eq!(store.fallback_commits(), 0);
        assert!(store.check_invariants());
    }

    /// The single-thread placement is bit-identical to the exact-view
    /// kernel driven by hand: same winners, same max height, same RNG
    /// stream position afterwards.
    #[test]
    fn single_thread_matches_exact_kernel() {
        let store = AtomicStore::new(32);
        let mut reference = LoadVector::new(32);
        let mut scratch = PlaceScratch::new();
        let (mut slots, mut ref_bins) = (Vec::new(), Vec::new());
        for step in 0..400u64 {
            let mut rng = Xoshiro256PlusPlus::from_u64(step);
            let mut rng_ref = Xoshiro256PlusPlus::from_u64(step);
            let probes: Vec<usize> = (0..4).map(|_| (rng.next_u64() % 32) as usize).collect();
            let ref_probes: Vec<usize> =
                (0..4).map(|_| (rng_ref.next_u64() % 32) as usize).collect();
            let mut sorted = ref_probes.clone();
            sorted.sort_unstable();
            ref_bins.clear();
            let ref_max = decide_k_least(
                &reference,
                &sorted,
                2,
                &mut rng_ref,
                &mut slots,
                &mut ref_bins,
            );
            for &bin in &ref_bins {
                reference.add_ball(bin);
            }
            let placement = store.place_with(&probes, 2, &mut rng, &mut scratch);
            assert_eq!(placement.bins, ref_bins, "step {step}");
            assert_eq!(placement.max_height, ref_max, "step {step}");
            assert_eq!(rng.next_u64(), rng_ref.next_u64(), "RNG stream step {step}");
        }
        let mut loads = Vec::new();
        store.copy_loads_into(&mut loads);
        assert_eq!(loads, reference.loads());
    }

    /// A packed decision view clamps what the decision sees but never
    /// what the counters hold: pile 20 balls on bin 0 and the view says
    /// 15 while truth, conservation, and the histogram stay exact.
    #[test]
    fn packed_view_clamps_decisions_not_truth() {
        let mut store = AtomicStore::with_kind(4, StoreKind::Packed4);
        assert_eq!(store.store_kind(), StoreKind::Packed4);
        for _ in 0..20 {
            store.add_ball(0);
        }
        assert_eq!(BinStore::load(&store, 0), 20);
        assert_eq!(store.view_load(0), 15, "clamped at 2^4 - 1");
        assert_eq!(store.total_balls(), 20);
        assert!(store.check_invariants());
        // Beyond the ceiling every bin looks equally loaded, so the
        // decision falls back to tie keys — but commits stay exact.
        let p = store.place_k_least(&[0, 1], 1, &mut Xoshiro256PlusPlus::from_u64(0));
        assert_eq!(p.bins, vec![1], "bin 1 (0 < clamped 15) must win");
        assert_eq!(store.total_balls(), 21);
    }

    #[test]
    fn stamped_snapshot_is_consistent_and_exact_at_quiescence() {
        let store = AtomicStore::new(8);
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let mut scratch = PlaceScratch::new();
        for _ in 0..10 {
            store.place_with(&[1, 2, 5, 5], 2, &mut rng, &mut scratch);
        }
        let snap = store.stamped_snapshot();
        assert!(snap.consistent);
        assert_eq!(snap.generation, 10, "one operation per placement");
        assert_eq!(snap.loads.iter().map(|&l| u64::from(l)).sum::<u64>(), 20);
        let mut loads = Vec::new();
        store.copy_loads_into(&mut loads);
        assert_eq!(snap.loads, loads);
    }

    #[test]
    fn bin_store_surface_matches_load_vector_semantics() {
        let mut store = AtomicStore::new(4);
        assert_eq!(store.add_ball(1), 1);
        assert_eq!(store.add_ball(1), 2);
        assert_eq!(store.add_ball(3), 1);
        assert_eq!(BinStore::load(&store, 1), 2);
        assert_eq!(store.max_load(), 2);
        assert_eq!(store.total_balls(), 3);
        assert_eq!(store.nu(0), 4);
        assert_eq!(store.nu(1), 2);
        assert_eq!(store.nu(2), 1);
        assert_eq!(store.remove_ball(1), 2);
        assert_eq!(store.histogram(), vec![2, 2]);
        assert!((store.gap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_capacities_normalize_utilization() {
        let mut store = AtomicStore::with_capacities(4, &[1, 4, 1, 1]);
        assert_eq!(BinStore::total_capacity(&store), 7);
        assert_eq!(store.capacity(1), 4);
        for _ in 0..4 {
            store.add_ball(1);
        }
        store.add_ball(0);
        // Bin 0 at 1/1 dominates bin 1 at 4/4 only by tie; both are 1.0.
        assert!((store.max_utilization() - 1.0).abs() < 1e-12);
        assert!(store.check_invariants());
    }

    #[test]
    #[should_panic(expected = "store=sketch is not supported")]
    fn sketch_kind_is_rejected() {
        let _ = AtomicStore::with_kind(8, StoreKind::Sketch);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_is_caught() {
        let store = AtomicStore::new(4);
        let mut rng = Xoshiro256PlusPlus::from_u64(0);
        let p = store.place_k_least(&[0, 1], 1, &mut rng);
        store.release(&p.bins);
        store.release(&p.bins);
    }
}
