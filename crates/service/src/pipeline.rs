//! The open-loop placement pipeline: executes a [`TrafficSchedule`]
//! against a [`ShardedStore`], batching commits and releases, and
//! accounts per-request latency plus instantaneous load over the run.
//!
//! Division of labor with [`crate::traffic`]: the traffic module fixes
//! *when* every request arrives, commits, and departs (a pure function
//! of `(TrafficConfig, seed)` on the **virtual clock** — integer ticks,
//! wall time never consulted); this module decides *where* the balls go
//! — (k,d)-choice placement, uniform or weighted through
//! [`ProbeDistribution`], over homogeneous or capacity-annotated bins —
//! and *how fast* the wall clock can chew through the virtual clock,
//! which is what the λ×threads throughput sweep measures.
//!
//! ## The 3-phase tick barrier
//!
//! With `threads > 1`, [`run_open_loop`] spawns persistent workers that
//! all walk the tick sequence in lockstep, separated by a shared
//! [`Barrier`] crossed **three times per tick**:
//!
//! 1. **Releases** — each worker releases its contiguous slice of the
//!    tick's departures. Departures must free load *before* the tick's
//!    commits probe it, or a commit could observe balls that the
//!    schedule says are already gone.
//! 2. **Commits** — each worker commits its slice of the tick's
//!    committed-request id range (per-request RNGs derived from
//!    `(seed, id)`, so slicing cannot change any request's probes or tie
//!    keys).
//! 3. **Quiescent sample** — every worker is parked at the next
//!    barrier, so the coordinator can snapshot the store (live balls,
//!    max load, gap) for the time series without racing any commit.
//!
//! ## Which determinism guarantees survive batching / concurrency
//!
//! | Quantity | 1 thread | any threads / batch size |
//! |---|---|---|
//! | arrival/commit/departure event stream, latency quantiles, backlog | exact | **exact** (schedule is precomputed) |
//! | per-request probes and tie keys | exact | **exact** (pure in `(seed, id)`) |
//! | ball conservation, shard invariants | exact | **exact** (checked every run) |
//! | final load shape / histogram | exact (both modes bit-identical) | interleaving-dependent |
//!
//! The first three rows are locked by proptests in
//! `tests/traffic_determinism.rs`; the single-thread bit-identity of
//! batched vs per-request pipelines by `tests/store_equivalence.rs`.

use std::sync::{Barrier, OnceLock};
use std::time::Instant;

use kdchoice_core::{BinStore, ProbeDistribution, StoreKind};
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};
use kdchoice_stats::Histogram;

use crate::engine::ServiceBackend;
use crate::service::prev_power_of_two;
use crate::sharded::{Placement, ShardedStore};
use crate::traffic::{ArrivalProcess, Lifetime, RequestTiming, TrafficConfig, TrafficSchedule};

/// Seed-stream tag for the traffic generator (see [`derive_seed`]).
const TRAFFIC_STREAM: u64 = 0;
/// Seed-stream tag that per-request placement RNGs derive under.
const PLACEMENT_STREAM: u64 = 1;

/// How the pipeline turns committed requests into store operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// One `place_k_least` / `release` call per request: the PR 3 lock
    /// choreography, up to `min(d, shards)` lock acquisitions per
    /// request.
    PerRequest,
    /// Requests are grouped into batches of up to
    /// [`OpenLoopConfig::max_batch`]; each batch commits through
    /// [`ShardedStore::place_batch`] (one lock acquisition per involved
    /// shard per batch) and departures release through one bulk
    /// `release` call per batch.
    Batched,
}

impl PipelineMode {
    /// The report label (`"batched"` / `"per_request"`).
    pub fn name(&self) -> &'static str {
        match self {
            PipelineMode::PerRequest => "per_request",
            PipelineMode::Batched => "batched",
        }
    }
}

/// Configuration of one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopConfig {
    /// Number of bins.
    pub bins: usize,
    /// Balls per placement request.
    pub k: usize,
    /// Probes per placement request (`d ≥ k`).
    pub d: usize,
    /// Shard count (power of two, ≤ bins).
    pub shards: usize,
    /// Worker threads draining the pipeline.
    pub threads: usize,
    /// Commit/release batching strategy.
    pub mode: PipelineMode,
    /// Max requests per batch in [`PipelineMode::Batched`] (`≥ 1`).
    pub max_batch: usize,
    /// The traffic trace (arrivals, lifetimes, clock length, capacity).
    pub traffic: TrafficConfig,
    /// The probe distribution placement requests sample bins from.
    /// Uniform (the default) draws the identical generator stream as
    /// before the weighted seam existed, so uniform runs are
    /// bit-identical either way.
    pub probes: ProbeDistribution,
    /// Per-bin capacities (`None` = all 1). Only the capacity-normalized
    /// observables change; placement still compares raw loads.
    pub capacities: Option<Vec<u32>>,
    /// Which concurrency backend drives the store: the lock-striped
    /// `ShardedStore`, the shared-nothing `OwnedShardEngine`, or the
    /// lock-free `AtomicStore`. The striped default keeps every pre-seam
    /// config bit-identical.
    pub backend: ServiceBackend,
    /// Shared-nothing only: owners republish their load snapshot every
    /// this many applied mutations (`≥ 1`). `1` on a single thread makes
    /// the snapshot synchronous and the run bit-identical to the striped
    /// backend; ignored by [`ServiceBackend::Striped`] and by
    /// [`ServiceBackend::LockFree`] (its counters *are* the truth —
    /// nothing to republish).
    pub snapshot_refresh: usize,
    /// Which bin-store representation backs the run (exact loads,
    /// packed b-bit offsets, or a count-min sketch). The exact default
    /// keeps every pre-compact config bit-identical; packed stores stay
    /// bit-identical to it while loads remain in the lossless window.
    pub store: StoreKind,
    /// Sample the load time series every this many ticks (`≥ 1`; the
    /// final tick is always sampled).
    pub sample_every: u32,
    /// Attach the full per-request event stream to the report (tests).
    pub record_events: bool,
    /// Master seed. The traffic stream and every request's placement
    /// stream derive from it under distinct tags, so the event schedule
    /// and each request's probes/tie keys are independent pure functions
    /// of `(config, seed)` — batch size and thread count cannot perturb
    /// either.
    pub seed: u64,
}

/// The **churn capacity** `bins / (k · mean_lifetime)` in commits per
/// tick, rounded to at least 1: the service rate at which the
/// steady-state average load is one ball per bin. Every λ sweep in the
/// workspace (the `at_lambda` constructor, the `open_loop` scenario's
/// `rate` default, the bench sweep, the examples) normalizes against
/// this one definition.
pub fn churn_capacity(bins: usize, k: usize, mean_lifetime: f64) -> u32 {
    ((bins as f64 / (k as f64 * mean_lifetime)).round() as u32).max(1)
}

impl OpenLoopConfig {
    /// A λ-normalized Poisson/exponential workload: the service rate is
    /// set to [`churn_capacity`] and requests arrive at `λ ×` that rate.
    pub fn at_lambda(
        bins: usize,
        k: usize,
        d: usize,
        lambda: f64,
        mean_lifetime: f64,
        ticks: u32,
        seed: u64,
    ) -> Self {
        let service_rate = churn_capacity(bins, k, mean_lifetime);
        Self {
            bins,
            k,
            d,
            shards: 16.min(prev_power_of_two(bins)),
            threads: 1,
            mode: PipelineMode::Batched,
            max_batch: 64,
            traffic: TrafficConfig {
                arrivals: ArrivalProcess::Poisson {
                    rate: lambda * f64::from(service_rate),
                },
                lifetime: Lifetime::Exponential {
                    mean: mean_lifetime,
                },
                ticks,
                service_rate,
            },
            probes: ProbeDistribution::Uniform,
            capacities: None,
            backend: ServiceBackend::Striped,
            snapshot_refresh: 1,
            store: StoreKind::Exact,
            sample_every: 1,
            record_events: false,
            seed,
        }
    }

    /// The seed the traffic schedule is generated from — a distinct
    /// stream of the master seed, so traffic and placement randomness
    /// never alias.
    pub fn traffic_seed(&self) -> u64 {
        derive_seed(self.seed, TRAFFIC_STREAM)
    }

    /// The seed request `id`'s placement RNG (probes, then tie keys) is
    /// built from. Pure in `(master seed, id)` — this is what makes the
    /// pipeline's placement stream independent of batching and
    /// threading, and lets tests replay a run request by request.
    pub fn request_seed(&self, id: u32) -> u64 {
        derive_seed(derive_seed(self.seed, PLACEMENT_STREAM), u64::from(id))
    }
}

/// One sampled point of the instantaneous-load time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickSample {
    /// The virtual tick the sample was taken at (end of tick).
    pub tick: u32,
    /// Balls currently held across all bins.
    pub live_balls: u64,
    /// Current maximum bin load.
    pub max_load: u32,
    /// Current gap `max load − average load`.
    pub gap: f64,
}

/// Aggregate results of one open-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopReport {
    /// Virtual ticks simulated.
    pub ticks: u32,
    /// Offered load λ (mean arrival rate / service rate).
    pub lambda: f64,
    /// Requests that arrived.
    pub requests_arrived: u64,
    /// Requests committed before the clock stopped.
    pub requests_committed: u64,
    /// Requests still queued at the end (overload backlog).
    pub backlog: u64,
    /// Balls placed (`committed × k`).
    pub balls_placed: u64,
    /// Balls released by departures.
    pub balls_released: u64,
    /// Balls still live at the end.
    pub live_balls: u64,
    /// Median queueing latency in ticks (committed requests).
    pub latency_p50: f64,
    /// 99th-percentile queueing latency in ticks.
    pub latency_p99: f64,
    /// Mean queueing latency in ticks.
    pub latency_mean: f64,
    /// Worst observed queueing latency in ticks.
    pub latency_max: u32,
    /// Peak of the live-ball time series.
    pub peak_live_balls: u64,
    /// Peak of the max-load time series.
    pub peak_max_load: u32,
    /// Final maximum load.
    pub final_max_load: u32,
    /// Final gap `max load − average load`.
    pub final_gap: f64,
    /// Mean gap over the second half of the run — the steady-state
    /// statistic the O(log log n) regression envelope is asserted on.
    pub steady_gap_mean: f64,
    /// Wall-clock seconds for the drive loop (schedule generation
    /// excluded — it is identical across modes and thread counts).
    pub wall_secs: f64,
    /// Balls placed per wall-clock second — the pipeline headline.
    pub balls_per_sec: f64,
    /// Final capacity-normalized gap `max utilization − live_balls /
    /// total_capacity` (equal to `final_gap` when every capacity is 1).
    pub final_util_gap: f64,
    /// `Σ c_bin` of the store (`bins` when homogeneous).
    pub total_capacity: u64,
    /// Whether the store conserved balls and passed `check_invariants`.
    pub conserved: bool,
    /// The final count-by-load histogram (entry `l` = bins holding
    /// exactly `l` balls) — the bit-exact state the equivalence tests
    /// compare.
    pub final_histogram: Vec<u64>,
    /// The sampled load time series.
    pub series: Vec<TickSample>,
    /// The full per-request event stream, when
    /// [`OpenLoopConfig::record_events`] was set.
    pub events: Option<Vec<RequestTiming>>,
}

/// A half-open request-id range `[start, end)`.
type IdRange = (u32, u32);

/// The contiguous sub-range worker `w` of `workers` owns.
pub(crate) fn worker_slice(range: IdRange, workers: usize, w: usize) -> IdRange {
    let len = (range.1 - range.0) as usize;
    let lo = range.0 as usize + len * w / workers;
    let hi = range.0 as usize + len * (w + 1) / workers;
    (lo as u32, hi as u32)
}

/// Everything a worker needs, shared read-only across threads.
struct Pipeline<'a> {
    store: &'a ShardedStore,
    probes: &'a ProbeDistribution,
    n: usize,
    schedule: &'a TrafficSchedule,
    slots: &'a [OnceLock<Placement>],
    k: usize,
    d: usize,
    mode: PipelineMode,
    max_batch: usize,
    place_base: u64,
}

impl Pipeline<'_> {
    /// The placement RNG of request `id` (pure in `(seed, id)`).
    fn request_rng(&self, id: u32) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::from_u64(derive_seed(self.place_base, u64::from(id)))
    }

    /// Commits the requests in `[range.0, range.1)` in id order.
    fn commit(&self, range: IdRange, probes: &mut Vec<usize>, rngs: &mut Vec<Xoshiro256PlusPlus>) {
        match self.mode {
            PipelineMode::PerRequest => {
                for id in range.0..range.1 {
                    let mut rng = self.request_rng(id);
                    probes.clear();
                    probes.extend((0..self.d).map(|_| self.probes.sample(&mut rng, self.n)));
                    let placement = self.store.place_k_least(probes, self.k, &mut rng);
                    assert!(self.slots[id as usize].set(placement).is_ok());
                }
            }
            PipelineMode::Batched => {
                let mut start = range.0;
                while start < range.1 {
                    let end = range.1.min(start + self.max_batch as u32);
                    rngs.clear();
                    probes.clear();
                    for id in start..end {
                        let mut rng = self.request_rng(id);
                        probes.extend((0..self.d).map(|_| self.probes.sample(&mut rng, self.n)));
                        rngs.push(rng);
                    }
                    let placements = self.store.place_batch(probes, self.d, self.k, rngs);
                    for (id, placement) in (start..end).zip(placements) {
                        assert!(self.slots[id as usize].set(placement).is_ok());
                    }
                    start = end;
                }
            }
        }
    }

    /// Releases the departures in `ids[range]` (indices into the tick's
    /// departure list).
    fn release(&self, ids: &[u32], bins: &mut Vec<usize>) {
        match self.mode {
            PipelineMode::PerRequest => {
                for &id in ids {
                    let placement = self.slots[id as usize]
                        .get()
                        .expect("departure precedes commit");
                    self.store.release(&placement.bins);
                }
            }
            PipelineMode::Batched => {
                for batch in ids.chunks(self.max_batch) {
                    bins.clear();
                    for &id in batch {
                        let placement = self.slots[id as usize]
                            .get()
                            .expect("departure precedes commit");
                        bins.extend_from_slice(&placement.bins);
                    }
                    self.store.release(bins);
                }
            }
        }
    }

    /// One worker's share of one tick's departures (`bins` is scratch).
    fn release_slice(&self, tick: usize, workers: usize, w: usize, bins: &mut Vec<usize>) {
        let departures = &self.schedule.departures[tick];
        let (lo, hi) = worker_slice((0, departures.len() as u32), workers, w);
        self.release(&departures[lo as usize..hi as usize], bins);
    }
}

/// Whether tick `t` of `ticks` is sampled into the time series.
pub(crate) fn want_sample(t: usize, sample_every: u32, ticks: usize) -> bool {
    t.is_multiple_of(sample_every as usize) || t + 1 == ticks
}

/// What a backend driver hands back to [`run_open_loop`]: the sampled
/// series, the wall time of the drive loop, and the merged end-of-run
/// store observables (every latency/backlog quantity is a schedule
/// property and is accounted centrally).
pub(crate) struct DriveOutcome {
    pub(crate) series: Vec<TickSample>,
    pub(crate) wall_secs: f64,
    pub(crate) live_balls: u64,
    pub(crate) final_histogram: Vec<u64>,
    pub(crate) final_util_gap: f64,
    pub(crate) total_capacity: u64,
    pub(crate) invariants_ok: bool,
}

/// One combined lock round over the shards: live balls and max load.
fn snapshot(store: &ShardedStore, tick: u32) -> TickSample {
    let histogram = store.histogram();
    let mut live = 0u64;
    let mut max = 0u32;
    for (load, &count) in histogram.iter().enumerate() {
        live += count * load as u64;
        if count > 0 {
            max = load as u32;
        }
    }
    let gap = f64::from(max) - live as f64 / store.n() as f64;
    TickSample {
        tick,
        live_balls: live,
        max_load: max,
        gap,
    }
}

/// Runs one open-loop workload: generates the traffic schedule, drives
/// it through the placement pipeline tick by tick, and reports latency
/// quantiles, load time series, throughput, and conservation.
///
/// With `threads == 1` the run is fully deterministic in `(config,
/// seed)` — including the final load shape — for **both** pipeline
/// modes, and the two modes are bit-identical to each other (locked by
/// `tests/store_equivalence.rs`). With `threads > 1` the event stream,
/// latencies, and conservation are still exact; only the load shape
/// depends on commit interleaving, as in the closed-loop service.
///
/// # Panics
///
/// Panics on invalid configuration.
pub fn run_open_loop(config: &OpenLoopConfig) -> OpenLoopReport {
    assert!(config.threads >= 1, "need at least one worker thread");
    assert!(config.max_batch >= 1, "max_batch must be at least 1");
    assert!(config.sample_every >= 1, "sample_every must be at least 1");
    assert!(config.k >= 1 && config.k <= config.d, "need 1 <= k <= d");
    if let Some(probes_n) = config.probes.expected_n() {
        assert_eq!(
            probes_n, config.bins,
            "probe distribution built for wrong bin count"
        );
    }
    let schedule = TrafficSchedule::generate(&config.traffic, config.traffic_seed())
        .unwrap_or_else(|e| panic!("invalid open-loop config: {e}"));

    let outcome = match config.backend {
        ServiceBackend::Striped => drive_striped(config, &schedule),
        ServiceBackend::SharedNothing => crate::engine::drive_open_loop_owned(config, &schedule),
        ServiceBackend::LockFree => crate::lockfree::drive_open_loop_lockfree(config, &schedule),
    };
    assemble_report(config, &schedule, outcome)
}

/// Drives the schedule through the lock-striped [`ShardedStore`] (the
/// original backend): single-thread inline, or persistent workers under
/// the 3-phase tick barrier.
fn drive_striped(config: &OpenLoopConfig, schedule: &TrafficSchedule) -> DriveOutcome {
    let store = match &config.capacities {
        None => ShardedStore::with_kind(config.bins, config.shards, config.store),
        Some(caps) => {
            ShardedStore::with_kind_capacities(config.bins, config.shards, caps, config.store)
        }
    };
    let slots: Vec<OnceLock<Placement>> = (0..schedule.timings.len())
        .map(|_| OnceLock::new())
        .collect();
    let pipeline = Pipeline {
        store: &store,
        probes: &config.probes,
        n: config.bins,
        schedule,
        slots: &slots,
        k: config.k,
        d: config.d,
        mode: config.mode,
        max_batch: config.max_batch,
        place_base: derive_seed(config.seed, PLACEMENT_STREAM),
    };

    let ticks = config.traffic.ticks as usize;
    let mut series: Vec<TickSample> = Vec::with_capacity(ticks / config.sample_every as usize + 2);

    let start = Instant::now();
    if config.threads == 1 {
        let mut probes = Vec::new();
        let mut rngs = Vec::new();
        for t in 0..ticks {
            pipeline.release_slice(t, 1, 0, &mut probes);
            pipeline.commit(schedule.commit_ranges[t], &mut probes, &mut rngs);
            if want_sample(t, config.sample_every, ticks) {
                series.push(snapshot(&store, t as u32));
            }
        }
    } else {
        // Persistent workers with a 3-phase barrier per tick: releases,
        // then commits (departures must free load before the tick's
        // placements probe it), then a quiescent window in which the
        // coordinator samples the time series.
        let barrier = Barrier::new(config.threads + 1);
        std::thread::scope(|scope| {
            for w in 0..config.threads {
                let pipeline = &pipeline;
                let barrier = &barrier;
                let workers = config.threads;
                scope.spawn(move || {
                    let mut probes = Vec::new();
                    let mut rngs = Vec::new();
                    for t in 0..ticks {
                        barrier.wait();
                        pipeline.release_slice(t, workers, w, &mut probes);
                        barrier.wait();
                        let range = worker_slice(pipeline.schedule.commit_ranges[t], workers, w);
                        pipeline.commit(range, &mut probes, &mut rngs);
                        barrier.wait();
                    }
                });
            }
            for t in 0..ticks {
                barrier.wait(); // workers release tick t's departures
                barrier.wait(); // workers commit tick t's requests
                barrier.wait(); // tick t fully applied
                if want_sample(t, config.sample_every, ticks) {
                    // Workers are parked at the next tick's first barrier
                    // (or done), so the store is quiescent here.
                    series.push(snapshot(&store, t as u32));
                }
            }
        });
    }
    let wall_secs = start.elapsed().as_secs_f64();

    DriveOutcome {
        series,
        wall_secs,
        live_balls: store.total_balls(),
        final_histogram: store.histogram(),
        final_util_gap: store.utilization_gap(),
        total_capacity: store.total_capacity(),
        invariants_ok: store.check_invariants(),
    }
}

/// Folds a backend's [`DriveOutcome`] and the schedule's virtual-clock
/// quantities into the report (latency accounting is identical for both
/// backends: the wall clock never perturbs virtual-clock statistics).
fn assemble_report(
    config: &OpenLoopConfig,
    schedule: &TrafficSchedule,
    outcome: DriveOutcome,
) -> OpenLoopReport {
    let mut latencies = Histogram::new();
    for timing in &schedule.timings {
        if let Some(latency) = timing.latency() {
            latencies.add(latency);
        }
    }
    let committed = schedule.committed();
    let balls_placed = committed * config.k as u64;
    let released_requests: u64 = schedule.departures.iter().map(|d| d.len() as u64).sum();
    let balls_released = released_requests * config.k as u64;
    let DriveOutcome {
        series,
        wall_secs,
        live_balls,
        final_histogram,
        final_util_gap,
        total_capacity,
        invariants_ok,
    } = outcome;
    let conserved = live_balls == balls_placed - balls_released && invariants_ok;

    let half = config.traffic.ticks / 2;
    let steady: Vec<&TickSample> = series.iter().filter(|s| s.tick >= half).collect();
    let steady_gap_mean = if steady.is_empty() {
        0.0
    } else {
        steady.iter().map(|s| s.gap).sum::<f64>() / steady.len() as f64
    };
    let final_sample = series.last().copied();

    OpenLoopReport {
        ticks: config.traffic.ticks,
        lambda: config.traffic.lambda_factor(),
        requests_arrived: schedule.arrived(),
        requests_committed: committed,
        backlog: schedule.backlog(),
        balls_placed,
        balls_released,
        live_balls,
        latency_p50: latencies.quantile(0.5).map_or(0.0, f64::from),
        latency_p99: latencies.quantile(0.99).map_or(0.0, f64::from),
        latency_mean: latencies.mean(),
        latency_max: latencies.max_value().unwrap_or(0),
        peak_live_balls: series.iter().map(|s| s.live_balls).max().unwrap_or(0),
        peak_max_load: series.iter().map(|s| s.max_load).max().unwrap_or(0),
        final_max_load: final_sample.map_or(0, |s| s.max_load),
        final_gap: final_sample.map_or(0.0, |s| s.gap),
        final_util_gap,
        total_capacity,
        steady_gap_mean,
        wall_secs,
        balls_per_sec: balls_placed as f64 / wall_secs,
        conserved,
        final_histogram,
        series,
        events: config.record_events.then(|| schedule.timings.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(mode: PipelineMode, threads: usize, lambda: f64) -> OpenLoopConfig {
        let mut cfg = OpenLoopConfig::at_lambda(64, 2, 4, lambda, 8.0, 120, 0xA11CE);
        cfg.shards = 4;
        cfg.threads = threads;
        cfg.mode = mode;
        cfg.max_batch = 7;
        cfg
    }

    #[test]
    fn at_lambda_normalizes_capacity() {
        let cfg = OpenLoopConfig::at_lambda(1 << 10, 2, 4, 0.9, 16.0, 100, 0);
        // capacity = 1024 / (2 * 16) = 32 commits/tick.
        assert_eq!(cfg.traffic.service_rate, 32);
        assert!((cfg.traffic.lambda_factor() - 0.9).abs() < 1e-12);
        assert!(cfg.shards.is_power_of_two() && cfg.shards <= cfg.bins);
    }

    #[test]
    fn worker_slices_partition_any_range() {
        for &(start, end) in &[(0u32, 0u32), (3, 17), (0, 100), (5, 6)] {
            for workers in 1..6 {
                let mut covered = start;
                for w in 0..workers {
                    let (lo, hi) = worker_slice((start, end), workers, w);
                    assert_eq!(lo, covered, "workers={workers} w={w}");
                    assert!(hi >= lo);
                    covered = hi;
                }
                assert_eq!(covered, end);
            }
        }
    }

    #[test]
    fn underloaded_run_has_low_latency_and_conserves() {
        let report = run_open_loop(&small_config(PipelineMode::Batched, 1, 0.5));
        assert!(report.conserved);
        assert_eq!(report.backlog, 0);
        // At λ=0.5 the typical request is served the tick it arrives;
        // Poisson bursts may still queue a few for a tick or two.
        assert_eq!(report.latency_p50, 0.0);
        assert!(report.latency_max < 10, "max {}", report.latency_max);
        assert_eq!(
            report.live_balls,
            report.balls_placed - report.balls_released
        );
        assert!(report.balls_placed > 0);
        assert!(report.balls_released > 0);
        assert!(!report.series.is_empty());
        assert_eq!(report.series.last().unwrap().tick, 119);
    }

    #[test]
    fn overloaded_run_builds_backlog_and_latency() {
        let report = run_open_loop(&small_config(PipelineMode::Batched, 1, 1.5));
        assert!(report.conserved);
        assert!(report.backlog > 0, "λ=1.5 must leave a backlog");
        assert!(report.latency_max > 5, "overload must build latency");
        assert!(report.latency_p99 >= report.latency_p50);
        // Live balls are capacity-bounded, not arrival-bounded.
        assert!(report.peak_live_balls <= report.balls_placed);
    }

    #[test]
    fn single_thread_modes_are_bit_identical() {
        for lambda in [0.6, 1.2] {
            let batched = run_open_loop(&small_config(PipelineMode::Batched, 1, lambda));
            let per_request = run_open_loop(&small_config(PipelineMode::PerRequest, 1, lambda));
            // Wall-clock fields differ; everything deterministic matches.
            assert_eq!(batched.series, per_request.series, "lambda={lambda}");
            assert_eq!(batched.final_max_load, per_request.final_max_load);
            assert_eq!(batched.live_balls, per_request.live_balls);
            assert_eq!(batched.requests_committed, per_request.requests_committed);
        }
    }

    #[test]
    fn multi_thread_run_conserves_and_keeps_the_event_stream() {
        let mut base = small_config(PipelineMode::Batched, 1, 1.1);
        base.record_events = true;
        let reference = run_open_loop(&base);
        for (threads, mode) in [(2, PipelineMode::Batched), (4, PipelineMode::PerRequest)] {
            let mut cfg = small_config(mode, threads, 1.1);
            cfg.record_events = true;
            let report = run_open_loop(&cfg);
            assert!(report.conserved, "threads={threads}");
            assert_eq!(report.events, reference.events, "threads={threads}");
            assert_eq!(report.latency_p99, reference.latency_p99);
            assert_eq!(report.requests_committed, reference.requests_committed);
            assert_eq!(report.live_balls, reference.live_balls);
        }
    }

    #[test]
    fn sample_every_thins_the_series_but_keeps_the_last_tick() {
        let mut cfg = small_config(PipelineMode::Batched, 1, 0.8);
        cfg.sample_every = 16;
        let report = run_open_loop(&cfg);
        assert!(report.series.len() < 120 / 8);
        assert_eq!(report.series.last().unwrap().tick, 119);
        assert!(report.conserved);
    }

    #[test]
    fn weighted_pipeline_conserves_and_modes_agree() {
        let mut base = small_config(PipelineMode::Batched, 1, 0.9);
        base.probes = ProbeDistribution::zipf(base.bins, 1.0).unwrap();
        base.capacities = Some(kdchoice_core::two_tier_capacities(base.bins, 8, 10));
        let batched = run_open_loop(&base);
        assert!(batched.conserved);
        assert_eq!(batched.total_capacity, 64 + 8 * 9);
        assert!(batched.final_util_gap <= f64::from(batched.final_max_load));
        let mut per_request = base.clone();
        per_request.mode = PipelineMode::PerRequest;
        let per_request = run_open_loop(&per_request);
        // The weighted placement stream is also pure in (seed, id):
        // single-threaded modes stay bit-identical.
        assert_eq!(batched.series, per_request.series);
        assert_eq!(batched.final_histogram, per_request.final_histogram);
    }

    #[test]
    fn homogeneous_util_gap_matches_load_gap() {
        let report = run_open_loop(&small_config(PipelineMode::Batched, 1, 0.7));
        assert_eq!(report.total_capacity, 64);
        assert!((report.final_util_gap - report.final_gap).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "wrong bin count")]
    fn mismatched_probe_support_is_rejected() {
        let mut cfg = small_config(PipelineMode::Batched, 1, 0.5);
        cfg.probes = ProbeDistribution::zipf(cfg.bins + 1, 1.0).unwrap();
        let _ = run_open_loop(&cfg);
    }

    #[test]
    fn pipeline_mode_names() {
        assert_eq!(PipelineMode::Batched.name(), "batched");
        assert_eq!(PipelineMode::PerRequest.name(), "per_request");
    }
}
