//! [`ShardedStore`]: `n` bins split across power-of-two lock-striped
//! shards, each shard a [`LoadVector`](kdchoice_core::LoadVector), observables merged on demand.
//!
//! **Striping.** Bin `b` lives in shard `b mod shards` at local index
//! `b div shards` (both computed with mask/shift, hence the
//! power-of-two shard count). Index-interleaved striping is what makes
//! the heterogeneous constructor capacity-proportional: the workspace's
//! capacity maps interleave fat bins by index, so every shard carries a
//! near-equal capacity share and no shard becomes the utilization hot
//! spot by construction.
//!
//! **Lock discipline.** Every multi-shard operation (placement, batch
//! placement, release) sorts and dedups the shard ids it touches and
//! locks them in ascending order — the single global lock order that
//! makes concurrent requests deadlock-free — and holds all of them from
//! the first load read to the last commit, so each request is one
//! linearization point.
//!
//! **Determinism.** One shard driven by one thread is bit-identical to a
//! plain [`LoadVector`](kdchoice_core::LoadVector) (locked by the proptest in
//! `tests/store_equivalence.rs`). Under concurrency, per-request probe
//! and tie-key streams stay exact (they come from caller-owned RNGs);
//! only the interleaving of commits — and therefore the final load
//! shape — is scheduler-driven. Conservation and per-shard invariants
//! hold under any interleaving.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard};

use kdchoice_core::{BinSlab, BinStore, StoreKind};
use rand::RngCore;

/// A shard slot padded out to a 64-byte cache line.
///
/// `Vec<Mutex<LoadVector>>` packs the mutex state words of neighbouring
/// shards into the same line, so under contention every lock/unlock
/// invalidates the line for threads hammering the *other* shards —
/// false sharing. Aligning each slot to its own line keeps shard lock
/// traffic independent (the `false_sharing_fix` section of
/// `BENCH_results.json` records the before/after delta).
#[derive(Debug)]
#[repr(align(64))]
struct CachePadded<T>(T);

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// One committed placement: the bins that received balls (with
/// multiplicity) and the tallest resulting ball height.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Destination bins, one entry per placed ball (a bin sampled `m`
    /// times may appear up to `m` times).
    pub bins: Vec<usize>,
    /// The maximum height among the placed balls — the job-completion
    /// proxy of §1.3.
    pub max_height: u32,
}

/// A concurrent bin store: `n` bins striped across a power-of-two number
/// of shards, shard `s` holding the bins with `bin % shards == s`, each
/// shard a mutex-guarded [`LoadVector`](kdchoice_core::LoadVector).
///
/// * **Concurrent surface** — [`ShardedStore::place_k_least`] and
///   [`ShardedStore::release`] take `&self`, lock only the shards a
///   request touches (in canonical ascending order, so concurrent
///   requests cannot deadlock), and commit atomically with respect to
///   other requests.
/// * **[`BinStore`] surface** — `&mut self` mutators go through
///   `Mutex::get_mut` (no lock overhead when exclusively owned), and
///   `&self` observables lock shard by shard and merge, so a
///   single-threaded caller can use a `ShardedStore` exactly like a
///   [`LoadVector`](kdchoice_core::LoadVector).
///
/// With one shard and a single thread, every operation is bit-identical
/// to the same operations on a plain [`LoadVector`](kdchoice_core::LoadVector) (locked by the
/// equivalence proptest in `tests/store_equivalence.rs`).
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<CachePadded<Mutex<BinSlab>>>,
    /// `shards.len() - 1`; shard of `bin` is `bin & mask`.
    mask: usize,
    /// `log2(shards.len())`; local index of `bin` is `bin >> bits`.
    bits: u32,
    n: usize,
    kind: StoreKind,
}

impl ShardedStore {
    /// Creates `n` empty exact bins striped over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or not a power of two, or `shards > n`.
    pub fn new(n: usize, shards: usize) -> Self {
        Self::build(n, shards, None, StoreKind::Exact)
    }

    /// [`ShardedStore::new`] with each shard holding a slab of the given
    /// [`StoreKind`] — packed slabs make a shard's decision path
    /// 16 bins/word instead of 2 bins/cache-line.
    ///
    /// # Panics
    ///
    /// As [`ShardedStore::new`].
    pub fn with_kind(n: usize, shards: usize, kind: StoreKind) -> Self {
        Self::build(n, shards, None, kind)
    }

    /// Creates `n` empty bins with per-bin capacities, striped over
    /// `shards` shards — the heterogeneous-cluster store.
    ///
    /// Striping stays index-interleaved (`shard = bin mod shards`), which
    /// is exactly what makes it **capacity-proportional** for the
    /// capacity maps this workspace generates: fat bins are interleaved
    /// by index (see `kdchoice_core::two_tier_capacities`), so every
    /// shard holds a near-equal slice of the total capacity and the
    /// merged utilization observables stay contention-balanced.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ShardedStore::new`], or if
    /// `capacities.len() != n` or any capacity is 0.
    pub fn with_capacities(n: usize, shards: usize, capacities: &[u32]) -> Self {
        assert_eq!(capacities.len(), n, "need exactly one capacity per bin");
        Self::build(n, shards, Some(capacities), StoreKind::Exact)
    }

    /// [`ShardedStore::with_capacities`] with a non-exact [`StoreKind`].
    ///
    /// # Panics
    ///
    /// As [`ShardedStore::with_capacities`], plus the slab constructor's
    /// own rejections ([`StoreKind::Sketch`] does not support
    /// heterogeneous capacities).
    pub fn with_kind_capacities(
        n: usize,
        shards: usize,
        capacities: &[u32],
        kind: StoreKind,
    ) -> Self {
        assert_eq!(capacities.len(), n, "need exactly one capacity per bin");
        Self::build(n, shards, Some(capacities), kind)
    }

    fn build(n: usize, shards: usize, capacities: Option<&[u32]>, kind: StoreKind) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count must be a power of two, got {shards}"
        );
        assert!(
            shards <= n,
            "cannot stripe {n} bins over {shards} shards (need shards <= n)"
        );
        let bits = shards.trailing_zeros();
        let shard_vecs = (0..shards)
            .map(|s| {
                // Bins congruent to s mod shards that are < n.
                let local_bins = (n - s).div_ceil(shards);
                let slab = match capacities {
                    None => kind.new_slab(local_bins),
                    Some(caps) => {
                        let local_caps: Vec<u32> = (0..local_bins)
                            .map(|local| caps[(local << bits) | s])
                            .collect();
                        kind.slab_with_capacities(&local_caps)
                    }
                };
                CachePadded(Mutex::new(slab))
            })
            .collect();
        Self {
            shards: shard_vecs,
            mask: shards - 1,
            bits,
            n,
            kind,
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The [`StoreKind`] every shard's slab runs.
    pub fn store_kind(&self) -> StoreKind {
        self.kind
    }

    #[inline]
    fn shard_of(&self, bin: usize) -> usize {
        bin & self.mask
    }

    #[inline]
    fn local_of(&self, bin: usize) -> usize {
        bin >> self.bits
    }

    #[inline]
    fn global_of(&self, shard: usize, local: usize) -> usize {
        (local << self.bits) | shard
    }

    /// Locks the given shard ids (must be sorted ascending and deduped —
    /// the canonical order that makes concurrent requests deadlock-free)
    /// and returns the guards in the same order.
    fn lock_in_order(&self, shard_ids: &[usize]) -> Vec<MutexGuard<'_, BinSlab>> {
        debug_assert!(shard_ids.windows(2).all(|w| w[0] < w[1]));
        shard_ids
            .iter()
            .map(|&s| self.shards[s].lock().expect("no poisoned shard"))
            .collect()
    }

    /// Serves one (k,d)-choice placement request: given `probes` (bin
    /// indices sampled with replacement by the caller), commits one ball
    /// into each of the `k` least-loaded tentative slots — a bin probed
    /// `m` times contributes `m` slots of heights `L+1, …, L+m`, exactly
    /// the paper's multiplicity rule — with ties broken by random keys
    /// drawn from `rng`.
    ///
    /// All shards the probes touch are locked (ascending shard order)
    /// before any load is read and released only after every ball is
    /// committed, so the decision and the commit are one atomic step
    /// relative to concurrent requests.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > probes.len()`, or any probe is out of
    /// range.
    pub fn place_k_least<R: RngCore + ?Sized>(
        &self,
        probes: &[usize],
        k: usize,
        rng: &mut R,
    ) -> Placement {
        assert!(k >= 1, "a placement request must place at least one ball");
        assert!(
            k <= probes.len(),
            "cannot place {k} balls on {} probed slots",
            probes.len()
        );
        assert!(
            probes.iter().all(|&b| b < self.n),
            "probe out of range (n = {})",
            self.n
        );
        let mut sorted = probes.to_vec();
        sorted.sort_unstable();
        let mut shard_ids: Vec<usize> = sorted.iter().map(|&b| self.shard_of(b)).collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let mut guards = self.lock_in_order(&shard_ids);
        self.serve_on_guards(&mut guards, &shard_ids, &sorted, k, rng)
    }

    /// The read–decide–commit kernel shared by [`ShardedStore::place_k_least`]
    /// and [`ShardedStore::place_batch`]: `sorted_probes` are the request's
    /// probes in ascending order, `guards` hold (at least) every shard they
    /// touch, keyed by the sorted `shard_ids`.
    fn serve_on_guards<R: RngCore + ?Sized>(
        &self,
        guards: &mut [MutexGuard<'_, BinSlab>],
        shard_ids: &[usize],
        sorted_probes: &[usize],
        k: usize,
        rng: &mut R,
    ) -> Placement {
        // Tentative slots (height, tie key, bin), multiplicities expanded.
        let mut slots: Vec<(u32, u64, usize)> = Vec::with_capacity(sorted_probes.len());
        let mut i = 0;
        while i < sorted_probes.len() {
            let bin = sorted_probes[i];
            let pos = shard_ids
                .binary_search(&self.shard_of(bin))
                .expect("shard was locked");
            let base = guards[pos].load(self.local_of(bin));
            let mut occ = 0u32;
            while i < sorted_probes.len() && sorted_probes[i] == bin {
                occ += 1;
                slots.push((base + occ, rng.next_u64(), bin));
                i += 1;
            }
        }
        if k < slots.len() {
            slots.select_nth_unstable_by(k - 1, |a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        }

        // Commit the k winners while still holding every involved lock.
        let mut bins = Vec::with_capacity(k);
        let mut max_height = 0u32;
        for &(_, _, bin) in &slots[..k] {
            let pos = shard_ids
                .binary_search(&self.shard_of(bin))
                .expect("shard was locked");
            let height = guards[pos].add_ball(self.local_of(bin));
            max_height = max_height.max(height);
            bins.push(bin);
        }
        Placement { bins, max_height }
    }

    /// Serves a whole batch of same-shaped placement requests with **one
    /// lock acquisition per involved shard**: request `i` probes
    /// `probes[i*d..(i+1)*d]` and draws its tie keys from `rngs[i]`.
    ///
    /// The union of shards touched by any probe in the batch is locked
    /// once (canonical ascending order, same as
    /// [`ShardedStore::place_k_least`]), then the requests are decided and
    /// committed **sequentially in batch order** under the held locks —
    /// each request sees every earlier request's balls, exactly as if the
    /// batch had been issued one `place_k_least` call at a time. On a
    /// single thread the two paths are therefore bit-identical (locked by
    /// `tests/store_equivalence.rs`); the batch just amortizes the lock
    /// choreography: `batch · min(d, shards)` acquisitions collapse into
    /// at most `shards`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > d`, `probes.len() != rngs.len() * d`, or
    /// any probe is out of range.
    pub fn place_batch<R: RngCore>(
        &self,
        probes: &[usize],
        d: usize,
        k: usize,
        rngs: &mut [R],
    ) -> Vec<Placement> {
        assert!(k >= 1, "a placement request must place at least one ball");
        assert!(k <= d, "cannot place {k} balls on {d} probed slots");
        assert_eq!(
            probes.len(),
            rngs.len() * d,
            "batch needs exactly d probes per request"
        );
        assert!(
            probes.iter().all(|&b| b < self.n),
            "probe out of range (n = {})",
            self.n
        );
        if rngs.is_empty() {
            return Vec::new();
        }
        let mut shard_ids: Vec<usize> = probes.iter().map(|&b| self.shard_of(b)).collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let mut guards = self.lock_in_order(&shard_ids);

        let mut sorted = Vec::with_capacity(d);
        rngs.iter_mut()
            .enumerate()
            .map(|(i, rng)| {
                sorted.clear();
                sorted.extend_from_slice(&probes[i * d..(i + 1) * d]);
                sorted.sort_unstable();
                self.serve_on_guards(&mut guards, &shard_ids, &sorted, k, rng)
            })
            .collect()
    }

    /// Serves a release request: removes one ball from every bin in
    /// `bins` (with multiplicity), atomically with respect to concurrent
    /// requests. Shards are locked in the same canonical ascending order
    /// as [`ShardedStore::place_k_least`].
    ///
    /// # Panics
    ///
    /// Panics if any bin is out of range or has no ball to remove.
    pub fn release(&self, bins: &[usize]) {
        assert!(
            bins.iter().all(|&b| b < self.n),
            "release out of range (n = {})",
            self.n
        );
        let mut shard_ids: Vec<usize> = bins.iter().map(|&b| self.shard_of(b)).collect();
        shard_ids.sort_unstable();
        shard_ids.dedup();
        let mut guards = self.lock_in_order(&shard_ids);
        for &bin in bins {
            let pos = shard_ids
                .binary_search(&self.shard_of(bin))
                .expect("shard was locked");
            guards[pos].remove_ball(self.local_of(bin));
        }
    }

    /// Verifies every shard's internal invariants plus the merged-view
    /// bookkeeping: the merged histogram sums to `n` and agrees with the
    /// merged per-bin loads and ball total. The weighted-histogram ==
    /// ball-total identity only holds while every shard reports exact
    /// loads (exact slabs, or packed slabs still lossless); a sketch
    /// shard's estimated loads may only **over**-count. O(n); for tests.
    pub fn check_invariants(&self) -> bool {
        let mut shard_ok = true;
        let mut loads_exact = true;
        let mut histogram_total = 0u64;
        let mut balls_from_loads = 0u64;
        let mut loads = Vec::new();
        self.copy_loads_into(&mut loads);
        for shard in &self.shards {
            let guard = shard.lock().expect("no poisoned shard");
            shard_ok &= guard.check_invariants();
            loads_exact &= match &*guard {
                BinSlab::Exact(_) => true,
                BinSlab::Packed(p) => p.is_lossless(),
                BinSlab::Sketch(_) => false,
            };
        }
        let histogram = self.histogram();
        for (load, &count) in histogram.iter().enumerate() {
            histogram_total += count;
            balls_from_loads += count * load as u64;
        }
        let mut counted = vec![0u64; histogram.len()];
        for &l in &loads {
            counted[l as usize] += 1;
        }
        let balls_ok = if loads_exact {
            balls_from_loads == self.total_balls()
        } else {
            balls_from_loads >= self.total_balls()
        };
        shard_ok
            && loads.len() == self.n
            && histogram_total == self.n as u64
            && balls_ok
            && counted == histogram
    }
}

impl BinStore for ShardedStore {
    fn n(&self) -> usize {
        self.n
    }

    fn load(&self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range (n = {})", self.n);
        let local = self.local_of(bin);
        self.shards[self.shard_of(bin)]
            .lock()
            .expect("no poisoned shard")
            .load(local)
    }

    fn add_ball(&mut self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range (n = {})", self.n);
        let (shard, local) = (self.shard_of(bin), self.local_of(bin));
        self.shards[shard]
            .get_mut()
            .expect("no poisoned shard")
            .add_ball(local)
    }

    fn remove_ball(&mut self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range (n = {})", self.n);
        let (shard, local) = (self.shard_of(bin), self.local_of(bin));
        self.shards[shard]
            .get_mut()
            .expect("no poisoned shard")
            .remove_ball(local)
    }

    fn max_load(&self) -> u32 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no poisoned shard").max_load())
            .max()
            .unwrap_or(0)
    }

    fn total_balls(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no poisoned shard").total_balls())
            .sum()
    }

    fn nu(&self, y: u32) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no poisoned shard").nu(y))
            .sum()
    }

    fn capacity(&self, bin: usize) -> u32 {
        assert!(bin < self.n, "bin {bin} out of range (n = {})", self.n);
        let local = self.local_of(bin);
        self.shards[self.shard_of(bin)]
            .lock()
            .expect("no poisoned shard")
            .capacity(local)
    }

    fn total_capacity(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no poisoned shard").total_capacity())
            .sum()
    }

    fn max_utilization(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("no poisoned shard").max_utilization())
            .fold(0.0, f64::max)
    }

    fn copy_loads_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.n, 0);
        for (shard_id, shard) in self.shards.iter().enumerate() {
            let guard = shard.lock().expect("no poisoned shard");
            for local in 0..guard.n() {
                out[self.global_of(shard_id, local)] = guard.load(local);
            }
        }
    }

    fn histogram(&self) -> Vec<u64> {
        // Reserve once from the merged max load instead of growing the
        // vector shard by shard — at huge n the incremental resizes are
        // real allocation churn on the merge path.
        let mut merged = vec![0u64; self.max_load() as usize + 1];
        for shard in &self.shards {
            shard
                .lock()
                .expect("no poisoned shard")
                .accumulate_histogram(&mut merged);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_core::LoadVector;
    use kdchoice_prng::sample::UniformBin;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn shard_slots_live_on_their_own_cache_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<Mutex<BinSlab>>>(), 64);
        assert!(std::mem::size_of::<CachePadded<Mutex<BinSlab>>>() >= 64);
        // Vec elements are laid out at stride = size >= align, so no two
        // shard slots can share a 64-byte line.
        let store = ShardedStore::new(16, 4);
        let addrs: Vec<usize> = store
            .shards
            .iter()
            .map(|s| std::ptr::from_ref(s) as usize)
            .collect();
        for pair in addrs.windows(2) {
            assert!(pair[1] - pair[0] >= 64);
            assert_eq!(pair[0] % 64, 0);
        }
    }

    #[test]
    fn striping_covers_every_bin_exactly_once() {
        for (n, shards) in [(8, 4), (13, 4), (1, 1), (17, 8), (64, 64)] {
            let store = ShardedStore::new(n, shards);
            assert_eq!(store.n(), n);
            assert_eq!(store.shard_count(), shards);
            let sizes: usize = store.shards.iter().map(|s| s.lock().unwrap().n()).sum();
            assert_eq!(sizes, n, "n={n} shards={shards}");
            // global -> (shard, local) -> global round-trips.
            for bin in 0..n {
                assert_eq!(
                    store.global_of(store.shard_of(bin), store.local_of(bin)),
                    bin
                );
            }
            assert!(store.check_invariants());
        }
    }

    #[test]
    fn capacity_striping_matches_single_load_vector() {
        use kdchoice_core::two_tier_capacities;
        let n = 29;
        let caps = two_tier_capacities(n, 4, 10);
        let store = ShardedStore::with_capacities(n, 4, &caps);
        let mut reference = LoadVector::with_capacities(&caps);
        let mut rng = Xoshiro256PlusPlus::from_u64(17);
        for _ in 0..500 {
            let bin = rng.next_u64() as usize % n;
            store.place_k_least(&[bin], 1, &mut rng);
            reference.add_ball(bin);
        }
        assert_eq!(store.total_capacity(), reference.total_capacity());
        for (bin, &cap) in caps.iter().enumerate() {
            assert_eq!(store.capacity(bin), cap, "bin {bin}");
            assert_eq!(store.load(bin), reference.load(bin), "bin {bin}");
        }
        assert!((store.max_utilization() - reference.max_utilization()).abs() < 1e-12);
        assert!((store.utilization_gap() - reference.utilization_gap()).abs() < 1e-12);
        assert!(store.check_invariants());
    }

    #[test]
    fn interleaved_fat_bins_balance_capacity_across_shards() {
        // two_tier_capacities puts fat bins at indices = 0 mod every;
        // modulo striping spreads them across shards when the stride and
        // shard count are coprime-ish; here every=3 over 4 shards.
        use kdchoice_core::two_tier_capacities;
        let n = 48;
        let caps = two_tier_capacities(n, 3, 10);
        let store = ShardedStore::with_capacities(n, 4, &caps);
        let per_shard: Vec<u64> = store
            .shards
            .iter()
            .map(|s| s.lock().unwrap().total_capacity())
            .collect();
        let (min, max) = (
            *per_shard.iter().min().unwrap(),
            *per_shard.iter().max().unwrap(),
        );
        assert_eq!(per_shard.iter().sum::<u64>(), store.total_capacity());
        assert!(
            max <= min + 9,
            "capacity skewed across shards: {per_shard:?}"
        );
    }

    #[test]
    #[should_panic(expected = "one capacity per bin")]
    fn capacity_length_mismatch_rejected() {
        let _ = ShardedStore::with_capacities(8, 2, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        let _ = ShardedStore::new(16, 3);
    }

    #[test]
    #[should_panic(expected = "shards <= n")]
    fn more_shards_than_bins_rejected() {
        let _ = ShardedStore::new(2, 4);
    }

    #[test]
    fn bin_store_surface_matches_mutations() {
        let mut store = ShardedStore::new(13, 4);
        assert_eq!(store.add_ball(5), 1);
        assert_eq!(store.add_ball(5), 2);
        assert_eq!(store.add_ball(12), 1);
        assert_eq!(store.load(5), 2);
        assert_eq!(store.max_load(), 2);
        assert_eq!(store.total_balls(), 3);
        assert_eq!(store.nu(1), 2);
        assert_eq!(store.nu(2), 1);
        assert_eq!(store.remove_ball(5), 2);
        assert_eq!(store.max_load(), 1);
        let mut loads = Vec::new();
        store.copy_loads_into(&mut loads);
        assert_eq!(loads[5], 1);
        assert_eq!(loads[12], 1);
        assert_eq!(loads.iter().map(|&l| u64::from(l)).sum::<u64>(), 2);
        assert!(store.check_invariants());
    }

    #[test]
    fn place_respects_multiplicity_and_prefers_cold_bins() {
        let store = ShardedStore::new(8, 2);
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        // Preload bin 0 heavily.
        for _ in 0..10 {
            store.place_k_least(&[0], 1, &mut rng);
        }
        // Probes {0, 3, 3}: picking 2 must take both slots of bin 3
        // (heights 1, 2) over bin 0 (height 11).
        let p = store.place_k_least(&[0, 3, 3], 2, &mut rng);
        let mut bins = p.bins.clone();
        bins.sort_unstable();
        assert_eq!(bins, vec![3, 3]);
        assert_eq!(p.max_height, 2);
        assert!(store.check_invariants());
    }

    #[test]
    fn release_undoes_place() {
        let store = ShardedStore::new(16, 4);
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let mut placements = Vec::new();
        for _ in 0..50 {
            let probes: Vec<usize> = (0..4).map(|_| rng.next_u64() as usize % 16).collect();
            placements.push(store.place_k_least(&probes, 2, &mut rng));
        }
        assert_eq!(store.total_balls(), 100);
        for p in &placements {
            store.release(&p.bins);
        }
        assert_eq!(store.total_balls(), 0);
        assert_eq!(store.max_load(), 0);
        assert!(store.check_invariants());
    }

    #[test]
    fn place_batch_matches_sequential_place_k_least() {
        let (n, d, k) = (23, 4, 2);
        let batched = ShardedStore::new(n, 4);
        let sequential = ShardedStore::new(n, 4);
        let sampler = UniformBin::new(n);
        // Per-request RNG pairs with identical streams on both sides.
        for round in 0..12 {
            let count = 1 + round % 5;
            let mut rngs_a: Vec<_> = (0..count)
                .map(|i| Xoshiro256PlusPlus::from_u64(round * 100 + i))
                .collect();
            let mut rngs_b = rngs_a.clone();
            let probes: Vec<usize> = rngs_a
                .iter_mut()
                .flat_map(|rng| (0..d).map(|_| sampler.sample(rng)).collect::<Vec<_>>())
                .collect();
            for (i, rng) in rngs_b.iter_mut().enumerate() {
                let req: Vec<usize> = (0..d).map(|_| sampler.sample(rng)).collect();
                assert_eq!(req, probes[i * d..(i + 1) * d], "probe streams agree");
            }
            let batch = batched.place_batch(&probes, d, k, &mut rngs_a);
            for (i, rng) in rngs_b.iter_mut().enumerate() {
                let one = sequential.place_k_least(&probes[i * d..(i + 1) * d], k, rng);
                assert_eq!(one, batch[i], "round {round} request {i}");
            }
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        batched.copy_loads_into(&mut a);
        sequential.copy_loads_into(&mut b);
        assert_eq!(a, b);
        assert!(batched.check_invariants());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let store = ShardedStore::new(8, 2);
        let mut rngs: Vec<Xoshiro256PlusPlus> = Vec::new();
        assert!(store.place_batch(&[], 3, 2, &mut rngs).is_empty());
        assert_eq!(store.total_balls(), 0);
    }

    #[test]
    #[should_panic(expected = "d probes per request")]
    fn place_batch_rejects_ragged_input() {
        let store = ShardedStore::new(8, 2);
        let mut rngs = vec![Xoshiro256PlusPlus::from_u64(1)];
        let _ = store.place_batch(&[1, 2, 3], 2, 1, &mut rngs);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn place_rejects_out_of_range_probe() {
        let store = ShardedStore::new(4, 2);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let _ = store.place_k_least(&[4], 1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one ball")]
    fn place_rejects_zero_k() {
        let store = ShardedStore::new(4, 2);
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let _ = store.place_k_least(&[1, 2], 0, &mut rng);
    }

    /// Packed shards serve the same placement stream bit-identically to
    /// exact shards while loads stay inside the 4-bit window — the
    /// striped-layer extension of the core equivalence proptests.
    #[test]
    fn packed_shards_match_exact_shards_below_saturation() {
        let n = 23;
        let exact = ShardedStore::new(n, 4);
        let packed = ShardedStore::with_kind(n, 4, StoreKind::Packed4);
        assert_eq!(exact.store_kind(), StoreKind::Exact);
        assert_eq!(packed.store_kind(), StoreKind::Packed4);
        let mut rng_a = Xoshiro256PlusPlus::from_u64(7);
        let mut rng_b = Xoshiro256PlusPlus::from_u64(7);
        for _ in 0..60 {
            let probes: Vec<usize> = (0..4).map(|_| rng_a.next_u64() as usize % n).collect();
            for _ in 0..4 {
                rng_b.next_u64();
            }
            let pa = exact.place_k_least(&probes, 2, &mut rng_a);
            let pb = packed.place_k_least(&probes, 2, &mut rng_b);
            assert_eq!(pa, pb);
        }
        assert_eq!(exact.histogram(), packed.histogram());
        assert_eq!(exact.max_load(), packed.max_load());
        assert!(packed.check_invariants());
    }

    #[test]
    fn sketch_shards_conserve_balls_and_release() {
        let n = 64;
        let store = ShardedStore::with_kind(n, 4, StoreKind::Sketch);
        let mut rng = Xoshiro256PlusPlus::from_u64(11);
        let mut placements = Vec::new();
        for _ in 0..40 {
            let probes: Vec<usize> = (0..3).map(|_| rng.next_u64() as usize % n).collect();
            placements.push(store.place_k_least(&probes, 1, &mut rng));
        }
        assert_eq!(store.total_balls(), 40);
        for p in &placements {
            store.release(&p.bins);
        }
        assert_eq!(store.total_balls(), 0);
    }

    #[test]
    fn packed_capacity_striping_keeps_exact_side_observables() {
        use kdchoice_core::two_tier_capacities;
        let n = 29;
        let caps = two_tier_capacities(n, 4, 10);
        let store = ShardedStore::with_kind_capacities(n, 4, &caps, StoreKind::Packed4);
        let mut rng = Xoshiro256PlusPlus::from_u64(17);
        for _ in 0..200 {
            let bin = rng.next_u64() as usize % n;
            store.place_k_least(&[bin], 1, &mut rng);
        }
        assert_eq!(
            store.total_capacity(),
            caps.iter().map(|&c| u64::from(c)).sum::<u64>()
        );
        assert!(store.max_utilization() > 0.0);
        assert!(store.check_invariants());
    }
}
