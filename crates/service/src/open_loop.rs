//! The open-loop dynamic traffic workload as a
//! [`kdchoice_expt::Scenario`] named `open_loop`.

use kdchoice_core::{two_tier_capacities, ProbeDistribution, StoreKind};
use kdchoice_expt::{Axis, Fields, GridError, GridSpec, Params, Scenario, Value};

use crate::engine::ServiceBackend;
use crate::pipeline::{run_open_loop, OpenLoopConfig, OpenLoopReport, PipelineMode};
use crate::service::prev_power_of_two;
use crate::traffic::{ArrivalProcess, Lifetime, TrafficConfig};

/// The open-loop traffic experiment family: Poisson (or burst / on-off)
/// arrivals and exponential (or deterministic) ball lifetimes on a
/// virtual clock, committed at a bounded service rate through the
/// batched (or per-request) placement pipeline, reporting queueing
/// latency quantiles in ticks alongside the usual load observables.
///
/// **Determinism caveat** (same shape as the `service` scenario): the
/// arrival/commit/departure event stream and every latency statistic
/// are pure functions of `(config, seed)` at *any* thread count; the
/// final load shape is additionally exact at `threads=1` and
/// interleaving-dependent above. Conservation and shard invariants are
/// re-checked on every run (`conserved` column).
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenLoopScenario;

impl Scenario for OpenLoopScenario {
    type Config = OpenLoopConfig;
    type Record = OpenLoopReport;

    fn name(&self) -> &'static str {
        "open_loop"
    }

    fn description(&self) -> &'static str {
        "open-loop traffic: Poisson/burst arrivals + ball lifetimes on a virtual clock, batched placement pipeline, latency in ticks"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> OpenLoopReport {
        let mut config = config.clone();
        config.seed = seed;
        config.record_events = false;
        run_open_loop(&config)
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("n", Value::U64(config.bins as u64)),
            ("k", Value::U64(config.k as u64)),
            ("d", Value::U64(config.d as u64)),
            ("shards", Value::U64(config.shards as u64)),
            ("threads", Value::U64(config.threads as u64)),
            ("mode", Value::Str(config.mode.name().into())),
            ("backend", Value::Str(config.backend.name().into())),
            ("refresh", Value::U64(config.snapshot_refresh as u64)),
            ("store", Value::Str(config.store.name().into())),
            ("batch", Value::U64(config.max_batch as u64)),
            ("lambda", Value::F64(config.traffic.lambda_factor())),
            ("mu", Value::F64(config.traffic.lifetime.mean_ticks())),
            ("rate", Value::U64(u64::from(config.traffic.service_rate))),
            ("ticks", Value::U64(u64::from(config.traffic.ticks))),
            (
                "skew",
                Value::Str(config.probes.label().into_owned().into()),
            ),
            (
                "caps",
                Value::Str(if config.capacities.is_some() {
                    "two_tier".into()
                } else {
                    "one".into()
                }),
            ),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        vec![
            ("arrived", Value::U64(record.requests_arrived)),
            ("committed", Value::U64(record.requests_committed)),
            ("backlog", Value::U64(record.backlog)),
            ("balls_placed", Value::U64(record.balls_placed)),
            ("balls_released", Value::U64(record.balls_released)),
            ("live_balls", Value::U64(record.live_balls)),
            ("latency_p50", Value::F64(record.latency_p50)),
            ("latency_p99", Value::F64(record.latency_p99)),
            ("latency_mean", Value::F64(record.latency_mean)),
            ("latency_max", Value::U64(u64::from(record.latency_max))),
            ("peak_live_balls", Value::U64(record.peak_live_balls)),
            ("peak_max_load", Value::U64(u64::from(record.peak_max_load))),
            ("max_load", Value::U64(u64::from(record.final_max_load))),
            ("gap", Value::F64(record.final_gap)),
            ("util_gap", Value::F64(record.final_util_gap)),
            ("steady_gap", Value::F64(record.steady_gap_mean)),
            ("balls_per_sec", Value::F64(record.balls_per_sec)),
            ("conserved", Value::Bool(record.conserved)),
        ]
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("n", "bins (default 2^12)"),
            Axis::new("k", "balls per placement request (default 2)"),
            Axis::new("d", "probes per placement request, d >= k (default 4)"),
            Axis::new(
                "shards",
                "lock-striped shards, power of two <= n (default 16, capped)",
            ),
            Axis::new("threads", "pipeline worker threads (default 4)"),
            Axis::new(
                "mode",
                "placement pipeline: batched | per_request (default batched; striped backend only)",
            ),
            Axis::new(
                "backend",
                "concurrency backend: striped | shared_nothing | lockfree (default striped)",
            ),
            Axis::new(
                "refresh",
                "shared_nothing snapshot republish period in mutations (default 1)",
            ),
            Axis::new(
                "store",
                "bin store: exact | packed4 | packed8 | sketch (default exact)",
            ),
            Axis::new("batch", "max requests per batched lock round (default 64)"),
            Axis::new(
                "lambda",
                "offered load as a fraction of the service rate (default 0.9)",
            ),
            Axis::new("mu", "mean ball lifetime in ticks (default 64)"),
            Axis::new(
                "life",
                "lifetime distribution: exp | det (default exp, mean mu)",
            ),
            Axis::new(
                "rate",
                "service rate, commits/tick (default n / (k * mu), the churn capacity)",
            ),
            Axis::new(
                "arrivals",
                "arrival process: poisson | burst | onoff (default poisson; same mean rate)",
            ),
            Axis::new("ticks", "virtual clock length (default 1000)"),
            Axis::new("sample", "time-series sampling stride in ticks (default 1)"),
            Axis::new(
                "skew",
                "probe skew: uniform | zipf (Zipf(s) weighted probing; default uniform)",
            ),
            Axis::new("s", "zipf exponent, skew=zipf only (default 1.0)"),
            Axis::new(
                "caps",
                "capacity spread: one | two_tier (every 10th bin 10x; default one)",
            ),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let bins = params.get_usize("n", 1 << 12)?;
        if bins == 0 {
            return Err(params.bad_value("n", "at least one bin"));
        }
        let k = params.get_usize("k", 2)?;
        let d = params.get_usize("d", 4)?;
        if k == 0 || d < k {
            return Err(params.bad_value("d", &format!("d >= k >= 1 (k={k})")));
        }
        let shards = params.get_usize("shards", 16.min(prev_power_of_two(bins)))?;
        if !shards.is_power_of_two() || shards > bins {
            return Err(params.bad_value("shards", "a power of two <= n"));
        }
        let threads = params.get_usize("threads", 4)?;
        if threads == 0 {
            return Err(params.bad_value("threads", "at least one worker thread"));
        }
        let mode = match params.get_raw("mode").unwrap_or("batched") {
            "batched" => PipelineMode::Batched,
            "per_request" => PipelineMode::PerRequest,
            _ => return Err(params.bad_value("mode", "batched | per_request")),
        };
        let backend = ServiceBackend::parse(params.get_raw("backend").unwrap_or("striped"))
            .ok_or_else(|| params.bad_value("backend", "striped | shared_nothing | lockfree"))?;
        if backend == ServiceBackend::SharedNothing && threads > bins {
            return Err(params.bad_value("threads", "threads <= n for shared_nothing"));
        }
        let snapshot_refresh = params.get_usize("refresh", 1)?;
        if snapshot_refresh == 0 {
            return Err(params.bad_value("refresh", "a period of at least 1 mutation"));
        }
        let max_batch = params.get_usize("batch", 64)?;
        if max_batch == 0 {
            return Err(params.bad_value("batch", "a batch of at least 1"));
        }
        let lambda = params.get_f64("lambda", 0.9)?;
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(params.bad_value("lambda", "a positive offered-load factor"));
        }
        let mu = params.get_f64("mu", 64.0)?;
        if !(mu.is_finite() && mu >= 1.0) {
            return Err(params.bad_value("mu", "a mean lifetime of at least 1 tick"));
        }
        let lifetime = match params.get_raw("life").unwrap_or("exp") {
            "exp" => Lifetime::Exponential { mean: mu },
            "det" => Lifetime::Deterministic {
                ticks: mu.round() as u32,
            },
            _ => return Err(params.bad_value("life", "exp | det")),
        };
        // Normalize capacity against the lifetime actually simulated
        // (det rounds mu to whole ticks), not the raw mu axis value.
        let capacity = u64::from(crate::pipeline::churn_capacity(
            bins,
            k,
            lifetime.mean_ticks(),
        ));
        let rate = params.get_u64("rate", capacity)?;
        let service_rate =
            u32::try_from(rate).map_err(|_| params.bad_value("rate", "a rate fitting u32"))?;
        if service_rate == 0 {
            return Err(params.bad_value("rate", "at least one commit per tick"));
        }
        let mean_rate = lambda * service_rate as f64;
        let arrivals = match params.get_raw("arrivals").unwrap_or("poisson") {
            "poisson" => ArrivalProcess::Poisson { rate: mean_rate },
            // Same mean rate, concentrated into one burst every 16 ticks.
            "burst" => ArrivalProcess::Burst {
                period: 16,
                size: ((mean_rate * 16.0).round() as u64).max(1),
            },
            // Same mean rate, on for a quarter of each 64-tick cycle.
            "onoff" => ArrivalProcess::OnOff {
                rate: mean_rate * 4.0,
                on: 16,
                off: 48,
            },
            _ => return Err(params.bad_value("arrivals", "poisson | burst | onoff")),
        };
        let ticks = params.get_u32("ticks", 1000)?;
        if ticks == 0 {
            return Err(params.bad_value("ticks", "at least one tick"));
        }
        let sample_every = params.get_u32("sample", 1)?;
        if sample_every == 0 {
            return Err(params.bad_value("sample", "a stride of at least 1"));
        }
        let s = params.get_f64("s", 1.0)?;
        if !(s.is_finite() && s >= 0.0) {
            return Err(params.bad_value("s", "a finite zipf exponent >= 0"));
        }
        let probes = match params.get_raw("skew").unwrap_or("uniform") {
            "uniform" => ProbeDistribution::Uniform,
            "zipf" => ProbeDistribution::zipf(bins, s)
                .map_err(|_| params.bad_value("s", "a valid zipf exponent"))?,
            _ => return Err(params.bad_value("skew", "uniform | zipf")),
        };
        let capacities = match params.get_raw("caps").unwrap_or("one") {
            "one" => None,
            "two_tier" => Some(two_tier_capacities(bins, 10, 10)),
            _ => return Err(params.bad_value("caps", "one | two_tier")),
        };
        let store = StoreKind::parse(params.get_raw("store").unwrap_or("exact"))
            .ok_or_else(|| params.bad_value("store", "exact | packed4 | packed8 | sketch"))?;
        if store == StoreKind::Sketch && capacities.is_some() {
            return Err(params.bad_value("store", "sketch does not support caps=two_tier"));
        }
        if backend == ServiceBackend::LockFree && store == StoreKind::Sketch {
            return Err(params.bad_value(
                "store",
                "exact | packed4 | packed8 for backend=lockfree (sketch counters cannot be CAS-validated)",
            ));
        }
        Ok(OpenLoopConfig {
            bins,
            k,
            d,
            shards,
            threads,
            mode,
            backend,
            snapshot_refresh,
            store,
            max_batch,
            traffic: TrafficConfig {
                arrivals,
                lifetime,
                ticks,
                service_rate,
            },
            probes,
            capacities,
            sample_every,
            record_events: false,
            seed: params.get_u64("seed", 0)?,
        })
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str(
            "n=2^8 shards=4 threads=1,2 mode=batched,per_request backend=striped,shared_nothing,lockfree store=exact,packed4 lambda=0.9,1.3 mu=16 ticks=160 arrivals=poisson,burst sample=8",
        )
        .expect("open_loop smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "balls/sec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_expt::{configs_from_grid, SweepReport, SweepRunner};

    #[test]
    fn grid_builds_configs_with_defaults_and_validation() {
        let grid = GridSpec::parse_str("lambda=0.5,1.2 threads=2 ticks=100").unwrap();
        let configs = configs_from_grid(&OpenLoopScenario, &grid, 9).unwrap();
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[0].bins, 1 << 12);
        assert_eq!(configs[0].mode, PipelineMode::Batched);
        assert_eq!(configs[0].seed, 9);
        // capacity = 4096 / (2 * 64) = 32 commits/tick.
        assert_eq!(configs[0].traffic.service_rate, 32);
        assert!((configs[1].traffic.lambda_factor() - 1.2).abs() < 1e-9);

        for bad in [
            "mode=psychic",
            "lambda=0",
            "lambda=-1",
            "mu=0.5",
            "life=weird",
            "rate=0",
            "arrivals=never",
            "ticks=0",
            "sample=0",
            "batch=0",
            "threads=0",
            "d=1 k=2",
            "shards=3",
            "n=0",
            "skew=psychic",
            "s=-1",
            "caps=lumpy",
            "backend=psychic",
            "refresh=0",
            "store=psychic",
            "store=sketch caps=two_tier",
            "backend=shared_nothing threads=4 n=2",
            "backend=lockfree store=sketch",
        ] {
            let grid = GridSpec::parse_str(bad).unwrap();
            assert!(
                configs_from_grid(&OpenLoopScenario, &grid, 0).is_err(),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn hetero_axes_build_weighted_configs() {
        let grid = GridSpec::parse_str("skew=zipf s=1.5 caps=two_tier n=2^7 ticks=80").unwrap();
        let cfg = &configs_from_grid(&OpenLoopScenario, &grid, 2).unwrap()[0];
        assert!(!cfg.probes.is_uniform());
        assert_eq!(cfg.probes.expected_n(), Some(128));
        let caps = cfg.capacities.as_ref().unwrap();
        assert_eq!(caps.len(), 128);
        assert_eq!(caps.iter().filter(|&&c| c == 10).count(), 13);
        let report = run_open_loop(cfg);
        assert!(report.conserved);
        assert_eq!(report.total_capacity, 115 + 13 * 10);
    }

    #[test]
    fn alternative_processes_preserve_the_mean_rate() {
        for spec in ["arrivals=burst", "arrivals=onoff", "life=det"] {
            let grid = GridSpec::parse_str(&format!("{spec} lambda=1.0 ticks=64")).unwrap();
            let cfg = &configs_from_grid(&OpenLoopScenario, &grid, 0).unwrap()[0];
            let factor = cfg.traffic.lambda_factor();
            assert!(
                (factor - 1.0).abs() < 0.05,
                "{spec}: lambda factor {factor}"
            );
        }
    }

    #[test]
    fn smoke_grid_runs_and_renders_valid_json() {
        let scenario = OpenLoopScenario;
        let grid =
            GridSpec::parse_str("n=2^7 shards=2 threads=2 lambda=1.1 mu=8 ticks=80 sample=8")
                .unwrap();
        let configs = configs_from_grid(&scenario, &grid, 1).unwrap();
        let cells = SweepRunner::new()
            .with_threads(1)
            .run_scenario(&scenario, &configs, 2);
        let report = SweepReport::from_cells(&scenario, &configs, &cells);
        assert_eq!(report.rows.len(), 2);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"open_loop\""));
            assert!(line.contains("\"conserved\": true"));
            assert!(line.contains("\"latency_p99\""));
        }
    }
}
