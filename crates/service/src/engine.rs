//! The shared-nothing placement engine: thread-per-shard ownership,
//! bounded SPSC rings, and snapshot-read probe decisions.
//!
//! ## Ownership model
//!
//! [`OwnedShardEngine`] partitions the `n` bins into `W` **contiguous**
//! ranges, one per worker thread: worker `w` owns bins
//! `[ceil(w·n/W), ceil((w+1)·n/W))` and is the **only** thread that ever
//! mutates their [`LoadVector`](kdchoice_core::LoadVector) — no mutex guards any shard state. The
//! ceiling-based bounds make the inverse owner map exact arithmetic:
//! `owner(bin) = ⌊bin·W/n⌋`, no search.
//!
//! ## Ring protocol
//!
//! Cross-shard operations travel over a `W × W` matrix of bounded
//! single-producer/single-consumer rings (Lamport queues over
//! `AtomicU64` slots — safe Rust, no new dependencies). A message is one
//! packed word: bit 63 selects add/remove, the low bits carry the bin.
//! A producer whose ring is full **drains its own inbox** before
//! retrying, so the system cannot deadlock: someone always consumes.
//!
//! ## Snapshot staleness semantics
//!
//! Probe decisions never lock anything: they read a
//! [`SharedLoadSnapshot`] — one relaxed `AtomicU32` per bin — through
//! the same [`decide_k_least`] kernel the locked path mirrors. Each
//! owner republishes its dirty bins every [`OwnedShardEngine::refresh`]
//! applied mutations. `refresh = 1` on a single thread makes the
//! snapshot synchronous (always equal to the truth), which is what
//! makes the shared-nothing path **bit-identical** to the lock-striped
//! path there; larger periods trade decision accuracy for publish
//! traffic, and the staleness-vs-gap sweep in `BENCH_results.json`
//! measures that the resulting gap stays inside the Theorem 2 envelope.
//!
//! ## Which determinism guarantees survive
//!
//! | Quantity | striped | shared-nothing |
//! |---|---|---|
//! | per-request probes / tie keys | pure in `(seed, id)` | **unchanged** (same streams) |
//! | single-thread final state | exact | **bit-identical to striped** when `refresh = 1` |
//! | multi-thread final state | interleaving-dependent | interleaving-dependent (flush timing) |
//! | ball conservation, invariants | exact | **exact** (checked every run) |

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, OnceLock};
use std::time::Instant;

use kdchoice_core::{decide_k_least, BinSlab, LoadSnapshot, StoreKind};
use kdchoice_prng::{derive_seed, Xoshiro256PlusPlus};
use rand::RngCore;

use crate::pipeline::{want_sample, worker_slice, DriveOutcome, OpenLoopConfig, TickSample};
use crate::service::{ServiceReport, ServiceWorkloadConfig};
use crate::sharded::Placement;
use crate::traffic::TrafficSchedule;

/// Which concurrency backend serves placement and release requests.
///
/// Both backends run the same (k,d)-choice decision kernel on the same
/// per-request RNG streams from the same configs; they differ only in
/// how concurrent state is shared. The bench harness races them on
/// identical open-loop traces (`backend_race` in `BENCH_results.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceBackend {
    /// The lock-striped [`crate::ShardedStore`]: cross-shard mutexes in
    /// canonical order, exact reads, one linearization point per request.
    Striped,
    /// The shared-nothing [`OwnedShardEngine`]: thread-per-shard
    /// ownership, SPSC rings, relaxed snapshot reads, no mutexes.
    SharedNothing,
    /// The lock-free [`crate::AtomicStore`]: one CAS-able `AtomicU32`
    /// per bin, optimistic read–decide–CAS commits with bounded retries,
    /// racy probe reads, no mutexes and no ownership partition.
    LockFree,
}

impl ServiceBackend {
    /// The report/axis label (`"striped"` / `"shared_nothing"` /
    /// `"lockfree"`).
    pub fn name(&self) -> &'static str {
        match self {
            ServiceBackend::Striped => "striped",
            ServiceBackend::SharedNothing => "shared_nothing",
            ServiceBackend::LockFree => "lockfree",
        }
    }

    /// Parses an axis value (the inverse of [`ServiceBackend::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "striped" => Some(ServiceBackend::Striped),
            "shared_nothing" => Some(ServiceBackend::SharedNothing),
            "lockfree" => Some(ServiceBackend::LockFree),
            _ => None,
        }
    }
}

/// Slots per SPSC ring. Overflow is handled by the producer draining its
/// own inbox, so capacity only tunes batching, not correctness.
const RING_CAPACITY: usize = 256;

/// Bit 63 of a ring message: set = remove one ball, clear = add one.
const OP_REMOVE: u64 = 1 << 63;

/// A bounded single-producer/single-consumer ring over `AtomicU64`
/// slots (a Lamport queue). The producer's release-store of `tail`
/// publishes the slot write; the consumer's release-store of `head`
/// returns the slot to the producer.
#[derive(Debug)]
struct SpscRing {
    slots: Vec<AtomicU64>,
    mask: u64,
    head: AtomicU64,
    tail: AtomicU64,
}

impl SpscRing {
    fn new(capacity: usize) -> Self {
        assert!(capacity.is_power_of_two());
        Self {
            slots: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Producer side: enqueue `msg`, or report the ring full.
    fn try_push(&self, msg: u64) -> bool {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Acquire);
        if t.wrapping_sub(h) >= self.slots.len() as u64 {
            return false;
        }
        self.slots[(t & self.mask) as usize].store(msg, Ordering::Relaxed);
        self.tail.store(t.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: dequeue the oldest message, if any.
    fn try_pop(&self) -> Option<u64> {
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire);
        if h == t {
            return None;
        }
        let msg = self.slots[(h & self.mask) as usize].load(Ordering::Relaxed);
        self.head.store(h.wrapping_add(1), Ordering::Release);
        Some(msg)
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

/// One worker's privately-owned shard: a contiguous bin range, its
/// [`LoadVector`](kdchoice_core::LoadVector), and the dirty-bin bookkeeping for snapshot publishes.
///
/// Exactly one thread holds `&mut` to each `ShardState`; the engine
/// never aliases it. Obtain them from [`OwnedShardEngine::new`] /
/// [`OwnedShardEngine::with_capacities`] (one per worker, in worker
/// order) and hand each to its thread.
#[derive(Debug)]
pub struct ShardState {
    /// Global index of the first owned bin.
    base: usize,
    /// Loads of the owned bins (local index = global − base), in the
    /// run's [`StoreKind`] representation.
    state: BinSlab,
    /// Local indices mutated since the last snapshot publish.
    dirty: Vec<usize>,
    /// Membership mask for `dirty` (no duplicate publishes).
    dirty_mark: Vec<bool>,
    /// Mutations applied since the last publish.
    since_flush: usize,
}

impl ShardState {
    fn new(base: usize, state: BinSlab) -> Self {
        let len = state.n();
        Self {
            base,
            state,
            dirty: Vec::with_capacity(len),
            dirty_mark: vec![false; len],
            since_flush: 0,
        }
    }

    /// Global index of the first owned bin.
    pub fn base(&self) -> usize {
        self.base
    }

    /// The owned loads (read-only; local index = global − base).
    pub fn slab(&self) -> &BinSlab {
        &self.state
    }
}

/// The shared-nothing placement engine (see the module docs for the
/// ownership, ring, and staleness contracts).
///
/// The engine itself is the *shared, immutable* part: partition bounds,
/// the snapshot, and the ring matrix. All mutable state lives in the
/// per-worker [`ShardState`]s, which is exactly why no method here takes
/// a lock.
#[derive(Debug)]
pub struct OwnedShardEngine {
    snapshot: LoadSnapshot,
    /// `rings[producer * workers + consumer]`.
    rings: Vec<SpscRing>,
    /// `bounds[w] = ceil(w·n/W)`; worker `w` owns `bounds[w]..bounds[w+1]`.
    bounds: Vec<usize>,
    workers: usize,
    n: usize,
    refresh: usize,
    kind: StoreKind,
}

impl OwnedShardEngine {
    /// Creates an engine over `n` homogeneous exact bins owned by
    /// `workers` threads, republishing snapshots every `refresh`
    /// mutations. Returns the engine and one [`ShardState`] per worker
    /// (index = worker id).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `workers == 0`, `workers > n`, or
    /// `refresh == 0`.
    pub fn new(n: usize, workers: usize, refresh: usize) -> (Self, Vec<ShardState>) {
        Self::build(n, workers, refresh, None, StoreKind::Exact)
    }

    /// [`OwnedShardEngine::new`] with shard state and snapshot in the
    /// given [`StoreKind`] representation. Packed kinds publish into a
    /// [`kdchoice_core::PackedLoadSnapshot`] — 16 bins per `u64` word at
    /// b = 4 instead of 2 `AtomicU32` bins per cache line, so each
    /// refresh touches ~8× fewer lines.
    ///
    /// # Panics
    ///
    /// As [`OwnedShardEngine::new`].
    pub fn with_kind(
        n: usize,
        workers: usize,
        refresh: usize,
        kind: StoreKind,
    ) -> (Self, Vec<ShardState>) {
        Self::build(n, workers, refresh, None, kind)
    }

    /// [`OwnedShardEngine::new`] with per-bin capacities (the
    /// heterogeneous cluster); `capacities.len()` must equal `n`.
    ///
    /// # Panics
    ///
    /// As [`OwnedShardEngine::new`], plus mismatched capacity length.
    pub fn with_capacities(
        n: usize,
        workers: usize,
        refresh: usize,
        capacities: &[u32],
    ) -> (Self, Vec<ShardState>) {
        assert_eq!(capacities.len(), n, "need exactly one capacity per bin");
        Self::build(n, workers, refresh, Some(capacities), StoreKind::Exact)
    }

    /// [`OwnedShardEngine::with_capacities`] with a non-exact
    /// [`StoreKind`].
    ///
    /// # Panics
    ///
    /// As [`OwnedShardEngine::with_capacities`], plus the slab
    /// constructor's own rejections ([`StoreKind::Sketch`] does not
    /// support heterogeneous capacities).
    pub fn with_kind_capacities(
        n: usize,
        workers: usize,
        refresh: usize,
        capacities: &[u32],
        kind: StoreKind,
    ) -> (Self, Vec<ShardState>) {
        assert_eq!(capacities.len(), n, "need exactly one capacity per bin");
        Self::build(n, workers, refresh, Some(capacities), kind)
    }

    fn build(
        n: usize,
        workers: usize,
        refresh: usize,
        capacities: Option<&[u32]>,
        kind: StoreKind,
    ) -> (Self, Vec<ShardState>) {
        assert!(n > 0, "need at least one bin");
        assert!(
            workers > 0 && workers <= n,
            "need 1 <= workers <= n bins (workers={workers}, n={n})"
        );
        assert!(refresh > 0, "snapshot refresh period must be at least 1");
        let bounds: Vec<usize> = (0..=workers).map(|w| (w * n).div_ceil(workers)).collect();
        let states = (0..workers)
            .map(|w| {
                let (lo, hi) = (bounds[w], bounds[w + 1]);
                let slab = match capacities {
                    None => kind.new_slab(hi - lo),
                    Some(caps) => kind.slab_with_capacities(&caps[lo..hi]),
                };
                ShardState::new(lo, slab)
            })
            .collect();
        let engine = Self {
            snapshot: LoadSnapshot::for_kind(kind, n),
            rings: (0..workers * workers)
                .map(|_| SpscRing::new(RING_CAPACITY))
                .collect(),
            bounds,
            workers,
            n,
            refresh,
            kind,
        };
        (engine, states)
    }

    /// The number of bins.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The number of owner threads (= shards).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The snapshot republish period, in applied mutations per owner.
    pub fn refresh(&self) -> usize {
        self.refresh
    }

    /// The [`StoreKind`] every shard's slab (and the snapshot) runs.
    pub fn store_kind(&self) -> StoreKind {
        self.kind
    }

    /// The published load snapshot probing threads decide against.
    pub fn snapshot(&self) -> &LoadSnapshot {
        &self.snapshot
    }

    /// The worker owning `bin` — exact arithmetic, no search, because
    /// the partition bounds are `ceil(w·n/W)`.
    #[inline]
    pub fn owner_of(&self, bin: usize) -> usize {
        debug_assert!(bin < self.n);
        bin * self.workers / self.n
    }

    /// The `[lo, hi)` global bin range worker `w` owns.
    pub fn owned_range(&self, w: usize) -> (usize, usize) {
        (self.bounds[w], self.bounds[w + 1])
    }

    /// Decides one (k,d)-choice placement against the **snapshot**
    /// (relaxed reads, no locks): winner bins are appended to `bins_out`
    /// and the maximum tentative height is returned. `sorted_probes`
    /// must be sorted ascending; `slots` is scratch. RNG consumption is
    /// identical to `ShardedStore::place_k_least`.
    #[inline]
    pub fn decide<R: RngCore + ?Sized>(
        &self,
        sorted_probes: &[usize],
        k: usize,
        rng: &mut R,
        slots: &mut Vec<(u32, u64, usize)>,
        bins_out: &mut Vec<usize>,
    ) -> u32 {
        decide_k_least(&self.snapshot, sorted_probes, k, rng, slots, bins_out)
    }

    fn ring(&self, from: usize, to: usize) -> &SpscRing {
        &self.rings[from * self.workers + to]
    }

    /// Applies one packed message to the owner's state and counts it
    /// toward the next snapshot publish.
    fn apply(&self, own: &mut ShardState, msg: u64) {
        let bin = (msg & !OP_REMOVE) as usize;
        let local = bin - own.base;
        if msg & OP_REMOVE != 0 {
            own.state.remove_ball(local);
        } else {
            own.state.add_ball(local);
        }
        if !own.dirty_mark[local] {
            own.dirty_mark[local] = true;
            own.dirty.push(local);
        }
        own.since_flush += 1;
        if own.since_flush >= self.refresh {
            self.flush(own);
        }
    }

    /// Publishes every dirty owned bin into the snapshot and resets the
    /// mutation counter. Owners call this implicitly every
    /// [`OwnedShardEngine::refresh`] mutations and once at shutdown.
    pub fn flush(&self, own: &mut ShardState) {
        for &local in &own.dirty {
            self.snapshot.set(own.base + local, own.state.load(local));
            own.dirty_mark[local] = false;
        }
        own.dirty.clear();
        own.since_flush = 0;
    }

    /// Drains worker `w`'s whole inbox (every ring with `w` as
    /// consumer), applying each message to `own`. Returns the number of
    /// messages applied.
    pub fn drain(&self, w: usize, own: &mut ShardState) -> u64 {
        let mut applied = 0;
        for p in 0..self.workers {
            if p == w {
                continue;
            }
            let ring = self.ring(p, w);
            while let Some(msg) = ring.try_pop() {
                self.apply(own, msg);
                applied += 1;
            }
        }
        applied
    }

    /// Whether worker `w`'s inbox is empty (for shutdown handshakes).
    pub fn inbox_empty(&self, w: usize) -> bool {
        (0..self.workers).all(|p| p == w || self.ring(p, w).is_empty())
    }

    /// Routes one add/remove for `bin` from worker `from`: applied
    /// directly when `from` owns the bin, enqueued to the owner's ring
    /// otherwise. A full ring is survived by draining `from`'s own inbox
    /// (which is what makes the routing deadlock-free) and yielding.
    fn submit(&self, from: usize, msg: u64, own: &mut ShardState) {
        let bin = (msg & !OP_REMOVE) as usize;
        let to = self.owner_of(bin);
        if to == from {
            self.apply(own, msg);
            return;
        }
        let ring = self.ring(from, to);
        while !ring.try_push(msg) {
            if self.drain(from, own) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Routes "place one ball into `bin`" from worker `from`.
    #[inline]
    pub fn submit_add(&self, from: usize, bin: usize, own: &mut ShardState) {
        self.submit(from, bin as u64, own);
    }

    /// Routes "remove one ball from `bin`" from worker `from`.
    #[inline]
    pub fn submit_remove(&self, from: usize, bin: usize, own: &mut ShardState) {
        self.submit(from, bin as u64 | OP_REMOVE, own);
    }
}

/// Merged end-of-run observables over the per-worker shard states, plus
/// the invariant verdict (per-shard invariants, histogram consistency,
/// and snapshot-equals-truth after the final flush).
struct MergedState {
    live_balls: u64,
    histogram: Vec<u64>,
    max_load: u32,
    nu1: u64,
    total_capacity: u64,
    max_utilization: f64,
    invariants_ok: bool,
}

fn merge_states(engine: &OwnedShardEngine, states: &[ShardState]) -> MergedState {
    let mut merged = MergedState {
        live_balls: 0,
        // Reserved once from the merged max load — growing shard by
        // shard reallocates repeatedly at huge n.
        histogram: vec![
            0u64;
            states.iter().map(|s| s.state.max_load()).max().unwrap_or(0) as usize + 1
        ],
        max_load: 0,
        nu1: 0,
        total_capacity: 0,
        max_utilization: 0.0,
        invariants_ok: true,
    };
    // Packed slabs past a clamp and sketches report quantized/estimated
    // loads, so the weighted-histogram-vs-ball-count identity only holds
    // where the representation is still exact.
    let mut loads_exact = true;
    for s in states {
        merged.invariants_ok &= s.state.check_invariants();
        merged.live_balls += s.state.total_balls();
        merged.max_load = merged.max_load.max(s.state.max_load());
        merged.nu1 += s.state.nu(1);
        merged.total_capacity += s.state.total_capacity();
        merged.max_utilization = merged.max_utilization.max(s.state.max_utilization());
        s.state.accumulate_histogram(&mut merged.histogram);
        loads_exact &= match &s.state {
            BinSlab::Exact(_) => true,
            BinSlab::Packed(p) => p.is_lossless(),
            BinSlab::Sketch(_) => false,
        };
        // After the final flush the snapshot must equal the truth (up to
        // the packed snapshot's publish ceiling).
        for local in 0..s.state.n() {
            merged.invariants_ok &= engine.snapshot().get(s.base + local)
                == engine.snapshot().published(s.state.load(local));
        }
    }
    let bins: u64 = merged.histogram.iter().sum();
    let weighted: u64 = merged
        .histogram
        .iter()
        .enumerate()
        .map(|(l, &c)| c * l as u64)
        .sum();
    merged.invariants_ok &= bins == engine.n() as u64;
    if loads_exact {
        merged.invariants_ok &= weighted == merged.live_balls;
    }
    merged
}

/// One worker's sampled `(live, max)` pairs for the configured ticks.
type LocalSamples = Vec<(u64, u32)>;

/// The per-tick body shared by the single- and multi-thread open-loop
/// drivers: route my slice of departures, then decide + route my slice
/// of commits.
#[allow(clippy::too_many_arguments)]
fn owned_tick(
    engine: &OwnedShardEngine,
    config: &OpenLoopConfig,
    schedule: &TrafficSchedule,
    slots: &[OnceLock<Placement>],
    t: usize,
    w: usize,
    workers: usize,
    state: &mut ShardState,
    probes_scratch: &mut [usize],
    slots_scratch: &mut Vec<(u32, u64, usize)>,
) {
    let departures = &schedule.departures[t];
    let (lo, hi) = worker_slice((0, departures.len() as u32), workers, w);
    for &id in &departures[lo as usize..hi as usize] {
        let placement = slots[id as usize].get().expect("departure precedes commit");
        for &bin in &placement.bins {
            engine.submit_remove(w, bin, state);
        }
    }
    let range = worker_slice(schedule.commit_ranges[t], workers, w);
    for id in range.0..range.1 {
        let mut rng = Xoshiro256PlusPlus::from_u64(config.request_seed(id));
        config
            .probes
            .fill_each(&mut rng, config.bins, probes_scratch);
        probes_scratch.sort_unstable();
        let mut bins = Vec::with_capacity(config.k);
        let max_height =
            engine.decide(probes_scratch, config.k, &mut rng, slots_scratch, &mut bins);
        for &bin in &bins {
            engine.submit_add(w, bin, state);
        }
        assert!(slots[id as usize]
            .set(Placement { bins, max_height })
            .is_ok());
    }
}

/// Drives an open-loop schedule through the shared-nothing engine.
///
/// `threads == 1` runs inline: no rings, and with `snapshot_refresh ==
/// 1` the snapshot is synchronous, so the run is bit-identical to the
/// striped backend (locked by `tests/backend_equivalence.rs`). With
/// more threads each tick ends in two rendezvous: first a
/// **drain-while-waiting** one — a worker that has routed all of its
/// releases and commits keeps draining its own inbox (never parking)
/// until every worker has finished pushing, which is what keeps a
/// neighbour stuck in the full-ring submit path live — then, once all
/// pushes of the tick are drained and sampled, a parking barrier (safe
/// there: nobody pushes between the two rendezvous points, so no one
/// can need a parked worker's drain).
pub(crate) fn drive_open_loop_owned(
    config: &OpenLoopConfig,
    schedule: &TrafficSchedule,
) -> DriveOutcome {
    assert!(
        config.threads <= config.bins,
        "shared-nothing backend needs threads <= bins (each worker owns >= 1 bin)"
    );
    assert!(
        config.snapshot_refresh >= 1,
        "snapshot refresh period must be at least 1"
    );
    let workers = config.threads;
    let (engine, mut states) = match &config.capacities {
        None => {
            OwnedShardEngine::with_kind(config.bins, workers, config.snapshot_refresh, config.store)
        }
        Some(caps) => OwnedShardEngine::with_kind_capacities(
            config.bins,
            workers,
            config.snapshot_refresh,
            caps,
            config.store,
        ),
    };
    let slots: Vec<OnceLock<Placement>> = (0..schedule.timings.len())
        .map(|_| OnceLock::new())
        .collect();
    let ticks = config.traffic.ticks as usize;
    let sampled_ticks: Vec<usize> = (0..ticks)
        .filter(|&t| want_sample(t, config.sample_every, ticks))
        .collect();

    let start = Instant::now();
    let (states, per_worker_samples): (Vec<ShardState>, Vec<LocalSamples>) = if workers == 1 {
        let mut state = states.pop().expect("one worker");
        let mut probes_scratch = vec![0usize; config.d];
        let mut slots_scratch = Vec::with_capacity(config.d);
        let mut samples = Vec::with_capacity(sampled_ticks.len());
        for t in 0..ticks {
            owned_tick(
                &engine,
                config,
                schedule,
                &slots,
                t,
                0,
                1,
                &mut state,
                &mut probes_scratch,
                &mut slots_scratch,
            );
            if want_sample(t, config.sample_every, ticks) {
                samples.push((state.state.total_balls(), state.state.max_load()));
            }
        }
        engine.flush(&mut state);
        (vec![state], vec![samples])
    } else {
        let barrier = Barrier::new(workers);
        // Monotone count of (worker, tick) push phases completed; tick t
        // is fully pushed once it reaches `(t + 1) * workers`. Monotone
        // so no per-tick reset can race with a late reader.
        let pushed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .drain(..)
                .enumerate()
                .map(|(w, mut state)| {
                    let engine = &engine;
                    let barrier = &barrier;
                    let pushed = &pushed;
                    let slots = &slots;
                    let sampled = sampled_ticks.len();
                    scope.spawn(move || {
                        let mut probes_scratch = vec![0usize; config.d];
                        let mut slots_scratch = Vec::with_capacity(config.d);
                        let mut samples = Vec::with_capacity(sampled);
                        for t in 0..ticks {
                            owned_tick(
                                engine,
                                config,
                                schedule,
                                slots,
                                t,
                                w,
                                workers,
                                &mut state,
                                &mut probes_scratch,
                                &mut slots_scratch,
                            );
                            // Drain-while-waiting rendezvous: a parked
                            // barrier here can deadlock — a worker stuck
                            // in the full-ring submit path needs *us* to
                            // keep draining until it, too, finishes its
                            // pushes for this tick.
                            pushed.fetch_add(1, Ordering::Release);
                            let goal = (t + 1) * workers;
                            while pushed.load(Ordering::Acquire) < goal {
                                if engine.drain(w, &mut state) == 0 {
                                    std::thread::yield_now();
                                }
                            }
                            engine.drain(w, &mut state);
                            if want_sample(t, config.sample_every, ticks) {
                                samples.push((state.state.total_balls(), state.state.max_load()));
                            }
                            barrier.wait(); // tick t fully applied + sampled
                        }
                        engine.flush(&mut state);
                        (state, samples)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("owned worker must not panic"))
                .unzip()
        })
    };
    let wall_secs = start.elapsed().as_secs_f64();

    // Merge the per-worker (live, max) pairs into the tick series.
    let series = sampled_ticks
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let live: u64 = per_worker_samples.iter().map(|s| s[i].0).sum();
            let max: u32 = per_worker_samples.iter().map(|s| s[i].1).max().unwrap_or(0);
            TickSample {
                tick: t as u32,
                live_balls: live,
                max_load: max,
                gap: f64::from(max) - live as f64 / config.bins as f64,
            }
        })
        .collect();

    let merged = merge_states(&engine, &states);
    DriveOutcome {
        series,
        wall_secs,
        live_balls: merged.live_balls,
        final_histogram: merged.histogram,
        final_util_gap: merged.max_utilization
            - merged.live_balls as f64 / merged.total_capacity as f64,
        total_capacity: merged.total_capacity,
        invariants_ok: merged.invariants_ok,
    }
}

/// Runs the closed-loop service workload on the shared-nothing engine:
/// the `threads` clients **are** the owners — each serves its own
/// request stream (same `derive_seed(seed, t)` streams as the striped
/// backend), decides on the snapshot, routes commits/releases over the
/// rings, and opportunistically drains its inbox between requests.
/// Shutdown is a done-counter handshake: a worker exits once every
/// client has finished issuing (release-ordered) and its own inbox is
/// empty, so no message is ever dropped.
pub(crate) fn run_service_workload_owned(config: &ServiceWorkloadConfig) -> ServiceReport {
    assert!(config.threads > 0, "need at least one client thread");
    assert!(
        config.threads <= config.bins,
        "shared-nothing backend needs threads <= bins (each worker owns >= 1 bin)"
    );
    assert!(
        config.k >= 1 && config.k <= config.d,
        "need 1 <= k <= d (k={}, d={})",
        config.k,
        config.d
    );
    let (engine, states) = OwnedShardEngine::with_kind(
        config.bins,
        config.threads,
        config.snapshot_refresh,
        config.store,
    );
    let sampler = kdchoice_prng::sample::UniformBin::new(config.bins);
    let done = AtomicUsize::new(0);

    let start = Instant::now();
    let results: Vec<(ShardState, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .into_iter()
            .enumerate()
            .map(|(w, mut state)| {
                let engine = &engine;
                let done = &done;
                scope.spawn(move || {
                    let mut rng = Xoshiro256PlusPlus::from_u64(derive_seed(config.seed, w as u64));
                    let mut probes_scratch = vec![0usize; config.d];
                    let mut slots_scratch = Vec::with_capacity(config.d);
                    let mut live: std::collections::VecDeque<Placement> =
                        std::collections::VecDeque::new();
                    let mut released = 0u64;
                    for _ in 0..config.requests_per_thread {
                        engine.drain(w, &mut state);
                        sampler.fill_seq(&mut rng, &mut probes_scratch);
                        probes_scratch.sort_unstable();
                        let mut bins = Vec::with_capacity(config.k);
                        let max_height = engine.decide(
                            &probes_scratch,
                            config.k,
                            &mut rng,
                            &mut slots_scratch,
                            &mut bins,
                        );
                        for &bin in &bins {
                            engine.submit_add(w, bin, &mut state);
                        }
                        if config.window > 0 {
                            live.push_back(Placement { bins, max_height });
                            if live.len() > config.window {
                                let oldest = live.pop_front().expect("window > 0");
                                released += oldest.bins.len() as u64;
                                for &bin in &oldest.bins {
                                    engine.submit_remove(w, bin, &mut state);
                                }
                            }
                        }
                    }
                    done.fetch_add(1, Ordering::Release);
                    loop {
                        engine.drain(w, &mut state);
                        if done.load(Ordering::Acquire) == config.threads && engine.inbox_empty(w) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    engine.flush(&mut state);
                    (state, released)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("owned client must not panic"))
            .collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let (states, released_counts): (Vec<ShardState>, Vec<u64>) = results.into_iter().unzip();
    let merged = merge_states(&engine, &states);
    let placements = (config.threads * config.requests_per_thread) as u64;
    let balls_placed = placements * config.k as u64;
    let balls_released: u64 = released_counts.iter().sum();
    let conserved = merged.live_balls == balls_placed - balls_released && merged.invariants_ok;
    ServiceReport {
        placements,
        balls_placed,
        balls_released,
        live_balls: merged.live_balls,
        wall_secs,
        placements_per_sec: placements as f64 / wall_secs,
        balls_per_sec: balls_placed as f64 / wall_secs,
        max_load: merged.max_load,
        gap: f64::from(merged.max_load) - merged.live_balls as f64 / config.bins as f64,
        nu1: merged.nu1,
        conserved,
        dim_gaps: vec![f64::from(merged.max_load) - merged.live_balls as f64 / config.bins as f64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [
            ServiceBackend::Striped,
            ServiceBackend::SharedNothing,
            ServiceBackend::LockFree,
        ] {
            assert_eq!(ServiceBackend::parse(b.name()), Some(b));
        }
        assert_eq!(ServiceBackend::parse("mutex"), None);
        assert_eq!(ServiceBackend::parse("lock_free"), None);
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring = SpscRing::new(4);
        assert!(ring.is_empty());
        for v in 0..4 {
            assert!(ring.try_push(v));
        }
        assert!(!ring.try_push(99), "full ring must refuse");
        for v in 0..4 {
            assert_eq!(ring.try_pop(), Some(v));
        }
        assert_eq!(ring.try_pop(), None);
        // Wrap-around keeps FIFO order.
        for v in 10..13 {
            assert!(ring.try_push(v));
        }
        assert_eq!(ring.try_pop(), Some(10));
        assert!(ring.try_push(13));
        for v in 11..14 {
            assert_eq!(ring.try_pop(), Some(v));
        }
    }

    #[test]
    fn partition_bounds_are_exact_and_cover() {
        for (n, workers) in [(16, 4), (17, 4), (509, 8), (5, 5), (7, 3), (1, 1)] {
            let (engine, states) = OwnedShardEngine::new(n, workers, 1);
            let mut covered = 0;
            for (w, s) in states.iter().enumerate() {
                let (lo, hi) = engine.owned_range(w);
                assert_eq!(lo, covered, "n={n} w={w}");
                assert_eq!(s.base(), lo);
                assert_eq!(s.slab().n(), hi - lo);
                assert!(hi > lo, "every worker owns at least one bin");
                for bin in lo..hi {
                    assert_eq!(engine.owner_of(bin), w, "n={n} workers={workers} bin={bin}");
                }
                covered = hi;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn apply_and_flush_publish_owned_loads() {
        let (engine, mut states) = OwnedShardEngine::new(10, 2, 4);
        let mut s0 = states.remove(0);
        // Worker 0 owns bins 0..5. Three mutations: below the refresh
        // period, so nothing published yet.
        engine.submit_add(0, 2, &mut s0);
        engine.submit_add(0, 2, &mut s0);
        engine.submit_add(0, 4, &mut s0);
        assert_eq!(s0.slab().load(2), 2);
        assert_eq!(engine.snapshot().get(2), 0, "refresh=4 not yet reached");
        // Fourth mutation crosses the period: all dirty bins publish.
        engine.submit_remove(0, 2, &mut s0);
        assert_eq!(engine.snapshot().get(2), 1);
        assert_eq!(engine.snapshot().get(4), 1);
    }

    #[test]
    fn cross_worker_messages_travel_the_ring() {
        let (engine, mut states) = OwnedShardEngine::new(10, 2, 1);
        let mut s1 = states.remove(1);
        let mut s0 = states.remove(0);
        // Worker 0 places into bin 7, owned by worker 1.
        engine.submit_add(0, 7, &mut s0);
        assert_eq!(s1.slab().total_balls(), 0);
        assert!(!engine.inbox_empty(1));
        assert_eq!(engine.drain(1, &mut s1), 1);
        assert_eq!(s1.slab().load(7 - s1.base()), 1);
        assert_eq!(engine.snapshot().get(7), 1, "refresh=1 is synchronous");
        assert!(engine.inbox_empty(1));
    }

    /// A packed engine publishes through the packed snapshot: same
    /// routing, ~8× fewer cache lines per refresh, values saturated at
    /// the publish ceiling.
    #[test]
    fn packed_engine_publishes_saturated_snapshot() {
        let (engine, mut states) = OwnedShardEngine::with_kind(32, 2, 1, StoreKind::Packed4);
        assert_eq!(engine.store_kind(), StoreKind::Packed4);
        assert!(matches!(engine.snapshot(), LoadSnapshot::Packed(_)));
        let mut s1 = states.remove(1);
        let mut s0 = states.remove(0);
        for _ in 0..20 {
            engine.submit_add(0, 3, &mut s0);
        }
        // A lone hot bin saturates both sides: renormalization cannot
        // advance the base while sibling bins sit at offset 0, so the
        // quantized truth and the published lane both pin at 15.
        assert_eq!(s0.slab().load(3), 15);
        assert_eq!(s0.slab().total_balls(), 20, "ball count stays exact");
        assert_eq!(engine.snapshot().get(3), 15);
        assert_eq!(engine.snapshot().published(20), 15);
        // Cross-worker traffic still routes over the rings.
        engine.submit_add(0, 31, &mut s0);
        assert_eq!(engine.drain(1, &mut s1), 1);
        assert_eq!(engine.snapshot().get(31), 1);
        let states = vec![s0, s1];
        assert!(merge_states(&engine, &states).invariants_ok);
    }

    #[test]
    #[should_panic(expected = "workers <= n")]
    fn more_workers_than_bins_rejected() {
        let _ = OwnedShardEngine::new(2, 4, 1);
    }
}
