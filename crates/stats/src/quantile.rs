//! Order statistics: quantiles and empirical CDFs on sample vectors.

/// Returns the `q`-quantile (`0 ≤ q ≤ 1`) of a **sorted** slice using linear
/// interpolation between closest ranks (type-7 estimator, the R/NumPy
/// default).
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is not in `[0, 1]` or the slice is not sorted (checked only
/// in debug builds).
///
/// ```
/// use kdchoice_stats::quantile::quantile_sorted;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile_sorted(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile_sorted(&xs, 1.0), Some(4.0));
/// assert_eq!(quantile_sorted(&xs, 0.5), Some(2.5));
/// ```
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if sorted.is_empty() {
        return None;
    }
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Sorts a copy of `xs` and returns the requested quantiles.
///
/// Convenience wrapper over [`quantile_sorted`]; returns an empty vector when
/// `xs` is empty.
pub fn quantiles(xs: &[f64], qs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    qs.iter()
        .map(|&q| quantile_sorted(&sorted, q).expect("non-empty"))
        .collect()
}

/// The median of `xs`, or `None` if empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(quantiles(xs, &[0.5])[0])
}

/// Evaluates the empirical CDF of a **sorted** sample at `x`:
/// the fraction of observations `≤ x`.
///
/// ```
/// use kdchoice_stats::quantile::ecdf_sorted;
///
/// let xs = [1.0, 2.0, 2.0, 5.0];
/// assert_eq!(ecdf_sorted(&xs, 0.5), 0.0);
/// assert_eq!(ecdf_sorted(&xs, 2.0), 0.75);
/// assert_eq!(ecdf_sorted(&xs, 9.0), 1.0);
/// ```
pub fn ecdf_sorted(sorted: &[f64], x: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let count = sorted.partition_point(|&v| v <= x);
    count as f64 / sorted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(quantile_sorted(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert!(quantiles(&[], &[0.5]).is_empty());
    }

    #[test]
    fn quantile_singleton() {
        let xs = [7.0];
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile_sorted(&xs, q), Some(7.0));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn quantiles_handle_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        let qs = quantiles(&xs, &[0.0, 0.5, 1.0]);
        assert_eq!(qs, vec![1.0, 5.0, 9.0]);
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile_sorted(&xs, 0.3), Some(3.0));
        assert_eq!(quantile_sorted(&xs, 0.77), Some(7.7));
    }

    #[test]
    fn quantile_monotone_in_q() {
        let xs = [1.0, 1.0, 2.0, 3.5, 8.0, 13.0];
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = quantile_sorted(&xs, q).unwrap();
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn ecdf_basics() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(ecdf_sorted(&xs, 0.0), 0.0);
        assert_eq!(ecdf_sorted(&xs, 1.0), 1.0 / 3.0);
        assert_eq!(ecdf_sorted(&xs, 2.5), 2.0 / 3.0);
        assert_eq!(ecdf_sorted(&xs, 3.0), 1.0);
        assert_eq!(ecdf_sorted(&[], 3.0), 0.0);
    }
}
