//! Statistics substrate for the `kdchoice` workspace.
//!
//! Everything the experiments need to aggregate and compare simulation
//! output, implemented from scratch:
//!
//! * [`summary`] — streaming mean/variance/min/max (Welford).
//! * [`quantile`] — order statistics on sorted samples.
//! * [`histogram`] — integer-valued histograms (ball heights, bin loads).
//! * [`special`] — `ln Γ` (Lanczos), `erf`/`erfc` used by both the hypothesis
//!   tests and the theory crate's Stirling inversions.
//! * [`tests`] — two-sample Kolmogorov–Smirnov and Mann–Whitney U tests,
//!   used to check Property (i) (serialization equivalence) empirically.
//! * [`ci`] — Wilson score intervals and bootstrap confidence intervals.
//! * [`order`] — majorization and domination checks on load vectors
//!   (Definition 2 of the paper).
//! * [`vector`] — per-dimension gap observables for multidimensional
//!   (vector) loads.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod ci;
pub mod histogram;
pub mod order;
pub mod quantile;
pub mod special;
pub mod summary;
pub mod tests;
pub mod vector;

pub use histogram::Histogram;
pub use summary::Summary;
