//! Confidence intervals: Wilson score for proportions, bootstrap for means.

use rand::{Rng, RngCore};

/// A two-sided confidence interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
}

impl Interval {
    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// The width `hi − lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`, at critical value `z` (1.96 for 95%).
///
/// Well-behaved for small counts and extreme proportions, unlike the normal
/// (Wald) interval.
///
/// # Panics
///
/// Panics if `trials == 0` or `successes > trials`.
///
/// ```
/// use kdchoice_stats::ci::wilson;
///
/// let iv = wilson(80, 100, 1.96);
/// assert!(iv.contains(0.8));
/// assert!(iv.lo > 0.70 && iv.hi < 0.88);
/// ```
pub fn wilson(successes: u64, trials: u64, z: f64) -> Interval {
    assert!(trials > 0, "wilson interval needs at least one trial");
    assert!(successes <= trials, "successes exceed trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    // At the boundaries the exact endpoints are 0 and 1; pin them so that
    // floating-point round-off cannot exclude the point estimate.
    let lo = if successes == 0 {
        0.0
    } else {
        (center - half).clamp(0.0, p)
    };
    let hi = if successes == trials {
        1.0
    } else {
        (center + half).clamp(p, 1.0)
    };
    Interval { lo, hi }
}

/// Percentile bootstrap confidence interval for the mean of `xs`.
///
/// Resamples `xs` with replacement `resamples` times and reports the
/// `[(1−level)/2, (1+level)/2]` percentiles of the resampled means.
///
/// # Panics
///
/// Panics if `xs` is empty, `resamples == 0`, or `level` is not in (0, 1).
///
/// ```
/// use kdchoice_stats::ci::bootstrap_mean;
/// use kdchoice_prng::Xoshiro256PlusPlus;
///
/// let xs: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let iv = bootstrap_mean(&xs, 500, 0.95, &mut rng);
/// assert!(iv.contains(4.5)); // true mean of 0..10 repeated
/// ```
pub fn bootstrap_mean<R: RngCore + ?Sized>(
    xs: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
) -> Interval {
    assert!(!xs.is_empty(), "bootstrap needs a non-empty sample");
    assert!(resamples > 0, "bootstrap needs at least one resample");
    assert!((0.0..1.0).contains(&level) && level > 0.0, "bad level");
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += xs[rng.gen_range(0..n)];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo = crate::quantile::quantile_sorted(&means, alpha).expect("non-empty");
    let hi = crate::quantile::quantile_sorted(&means, 1.0 - alpha).expect("non-empty");
    Interval { lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn wilson_is_inside_unit_interval() {
        for &(s, t) in &[(0u64, 10u64), (10, 10), (1, 2), (500, 1000)] {
            let iv = wilson(s, t, 1.96);
            assert!(iv.lo >= 0.0 && iv.hi <= 1.0);
            assert!(iv.lo <= iv.hi);
        }
    }

    #[test]
    fn wilson_shrinks_with_more_trials() {
        let small = wilson(8, 10, 1.96);
        let large = wilson(800, 1000, 1.96);
        assert!(large.width() < small.width());
    }

    #[test]
    fn wilson_zero_and_full_successes() {
        let zero = wilson(0, 20, 1.96);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.4);
        let full = wilson(20, 20, 1.96);
        assert_eq!(full.hi, 1.0);
        assert!(full.lo > 0.6);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_rejects_zero_trials() {
        let _ = wilson(0, 0, 1.96);
    }

    #[test]
    fn interval_contains_and_width() {
        let iv = Interval { lo: 1.0, hi: 3.0 };
        assert!(iv.contains(1.0) && iv.contains(3.0) && iv.contains(2.0));
        assert!(!iv.contains(0.99) && !iv.contains(3.01));
        assert_eq!(iv.width(), 2.0);
    }

    #[test]
    fn bootstrap_covers_true_mean() {
        let xs: Vec<f64> = (0..500).map(|i| (i % 7) as f64).collect();
        let true_mean = 3.0;
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let iv = bootstrap_mean(&xs, 400, 0.99, &mut rng);
        assert!(iv.contains(true_mean), "{iv:?}");
    }

    #[test]
    fn bootstrap_degenerate_sample() {
        let xs = vec![2.5; 50];
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let iv = bootstrap_mean(&xs, 100, 0.95, &mut rng);
        assert_eq!(iv.lo, 2.5);
        assert_eq!(iv.hi, 2.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn bootstrap_rejects_empty() {
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let _ = bootstrap_mean(&[], 10, 0.95, &mut rng);
    }
}
