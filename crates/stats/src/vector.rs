//! Per-dimension observables for multidimensional (vector) loads.
//!
//! The Narang–Dutta extension gives every bin a D-dimensional load
//! vector; the empirical regressions ask Theorem 2's question *per
//! dimension*: how far is each dimension's maximum above its average?
//! These helpers compute that from a flat strided load table
//! (`loads[bin * dims + j]`, the layout of `kdchoice-core`'s
//! `VectorLoad`) and accumulate steady-state means of sampled gap
//! vectors for the scheduler's warm-window observables.

/// The per-dimension maxima of a strided load table.
///
/// # Panics
///
/// Panics if `dims == 0` or `strided.len()` is not a multiple of `dims`.
pub fn per_dim_max(strided: &[u32], dims: usize) -> Vec<u32> {
    assert!(dims > 0, "need at least one dimension");
    assert!(
        strided.len().is_multiple_of(dims),
        "strided table length must be a multiple of dims"
    );
    let mut max = vec![0u32; dims];
    for bin in strided.chunks_exact(dims) {
        for (m, &l) in max.iter_mut().zip(bin) {
            *m = (*m).max(l);
        }
    }
    max
}

/// The per-dimension means of a strided load table (0.0 on an empty
/// table).
///
/// # Panics
///
/// Panics under the same conditions as [`per_dim_max`].
pub fn per_dim_mean(strided: &[u32], dims: usize) -> Vec<f64> {
    assert!(dims > 0, "need at least one dimension");
    assert!(
        strided.len().is_multiple_of(dims),
        "strided table length must be a multiple of dims"
    );
    let n = strided.len() / dims;
    let mut sum = vec![0u64; dims];
    for bin in strided.chunks_exact(dims) {
        for (s, &l) in sum.iter_mut().zip(bin) {
            *s += u64::from(l);
        }
    }
    sum.into_iter()
        .map(|s| if n == 0 { 0.0 } else { s as f64 / n as f64 })
        .collect()
}

/// The per-dimension gaps `max_j − mean_j` — Theorem 2's observable
/// applied to each dimension of a strided load table.
///
/// # Panics
///
/// Panics under the same conditions as [`per_dim_max`].
pub fn per_dim_gaps(strided: &[u32], dims: usize) -> Vec<f64> {
    let max = per_dim_max(strided, dims);
    let mean = per_dim_mean(strided, dims);
    max.into_iter()
        .zip(mean)
        .map(|(m, a)| f64::from(m) - a)
        .collect()
}

/// A streaming accumulator of per-dimension gap vectors: feed one gap
/// vector per sampling instant, read the steady-state mean per
/// dimension — the scheduler's post-warmup observable.
///
/// ```
/// use kdchoice_stats::vector::DimGapAccumulator;
///
/// let mut acc = DimGapAccumulator::new(2);
/// acc.record(&[1.0, 3.0]);
/// acc.record(&[3.0, 5.0]);
/// assert_eq!(acc.means(), vec![2.0, 4.0]);
/// assert_eq!(acc.count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DimGapAccumulator {
    sums: Vec<f64>,
    count: u64,
}

impl DimGapAccumulator {
    /// An empty accumulator over `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "need at least one dimension");
        Self {
            sums: vec![0.0; dims],
            count: 0,
        }
    }

    /// Records one sampled gap vector.
    ///
    /// # Panics
    ///
    /// Panics if `gaps.len()` differs from the accumulator's dims.
    pub fn record(&mut self, gaps: &[f64]) {
        assert_eq!(gaps.len(), self.sums.len(), "gap vector/dims mismatch");
        for (s, &g) in self.sums.iter_mut().zip(gaps) {
            *s += g;
        }
        self.count += 1;
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The per-dimension mean gaps (all 0.0 before the first sample).
    pub fn means(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.sums.len()];
        }
        self.sums.iter().map(|s| s / self.count as f64).collect()
    }
}

#[cfg(test)]
mod vector_tests {
    use super::*;

    #[test]
    fn per_dim_observables_from_strided_table() {
        // 3 bins × 2 dims: (3,1), (1,2), (2,0).
        let strided = [3u32, 1, 1, 2, 2, 0];
        assert_eq!(per_dim_max(&strided, 2), vec![3, 2]);
        let mean = per_dim_mean(&strided, 2);
        assert!((mean[0] - 2.0).abs() < 1e-12);
        assert!((mean[1] - 1.0).abs() < 1e-12);
        let gaps = per_dim_gaps(&strided, 2);
        assert!((gaps[0] - 1.0).abs() < 1e-12);
        assert!((gaps[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dims_1_reduces_to_scalar_gap() {
        let loads = [5u32, 1, 0];
        let gaps = per_dim_gaps(&loads, 1);
        assert_eq!(gaps.len(), 1);
        assert!((gaps[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_is_all_zero() {
        assert_eq!(per_dim_max(&[], 3), vec![0, 0, 0]);
        assert_eq!(per_dim_mean(&[], 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(per_dim_gaps(&[], 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dims")]
    fn ragged_table_rejected() {
        let _ = per_dim_gaps(&[1, 2, 3], 2);
    }

    #[test]
    fn accumulator_means_converge() {
        let mut acc = DimGapAccumulator::new(3);
        assert_eq!(acc.means(), vec![0.0, 0.0, 0.0]);
        for i in 0..10 {
            let x = i as f64;
            acc.record(&[x, 2.0 * x, 0.0]);
        }
        let means = acc.means();
        assert!((means[0] - 4.5).abs() < 1e-12);
        assert!((means[1] - 9.0).abs() < 1e-12);
        assert_eq!(means[2], 0.0);
        assert_eq!(acc.count(), 10);
    }

    #[test]
    #[should_panic(expected = "gap vector/dims mismatch")]
    fn accumulator_rejects_ragged_samples() {
        let mut acc = DimGapAccumulator::new(2);
        acc.record(&[1.0]);
    }
}
