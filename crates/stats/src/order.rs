//! Majorization and domination on load vectors (Definition 2 of the paper).
//!
//! The paper compares allocation processes through two stochastic orders:
//!
//! * **majorization** `A₁ ≤mj A₂`: for every prefix length x and threshold t,
//!   `Pr(B^{A₁}_{≤x} ≥ t) ≤ Pr(B^{A₂}_{≤x} ≥ t)` — the top-x bins of A₂ are
//!   (stochastically) at least as full;
//! * **domination** `A₁ ≤dm A₂`: the same per-coordinate,
//!   `Pr(B^{A₁}_x ≥ t) ≤ Pr(B^{A₂}_x ≥ t)`.
//!
//! This module provides the deterministic, single-realization counterparts
//! (prefix-sum dominance on sorted vectors) and empirical estimators over
//! many trials, which the `properties` experiment uses to check Properties
//! (ii)–(v).

/// Sorts a load vector in descending order (the paper's "bin 1 = most
/// loaded" convention).
///
/// ```
/// use kdchoice_stats::order::sort_descending;
/// assert_eq!(sort_descending(&[1, 3, 2]), vec![3, 2, 1]);
/// ```
pub fn sort_descending(loads: &[u32]) -> Vec<u32> {
    let mut v = loads.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v
}

/// The prefix sums `B_{≤x}` of a descending-sorted load vector, for
/// `x = 1..=n`.
///
/// ```
/// use kdchoice_stats::order::prefix_sums;
/// assert_eq!(prefix_sums(&[3, 2, 1]), vec![3, 5, 6]);
/// ```
pub fn prefix_sums(sorted_desc: &[u32]) -> Vec<u64> {
    let mut acc = 0u64;
    sorted_desc
        .iter()
        .map(|&v| {
            acc += u64::from(v);
            acc
        })
        .collect()
}

/// Checks whether the single realization `a` is majorized by `b`
/// (`a ⪯ b` in the deterministic sense): every prefix sum of the
/// descending sort of `a` is `≤` the corresponding prefix sum of `b`.
///
/// The vectors may have different totals; this matches the paper's remark
/// that under *domination* the dominated process may even contain fewer
/// balls.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// ```
/// use kdchoice_stats::order::is_majorized_by;
///
/// // [2,2,2] is flatter than [3,2,1]: majorized.
/// assert!(is_majorized_by(&[2, 2, 2], &[3, 2, 1]));
/// assert!(!is_majorized_by(&[3, 2, 1], &[2, 2, 2]));
/// ```
pub fn is_majorized_by(a: &[u32], b: &[u32]) -> bool {
    assert_eq!(a.len(), b.len(), "load vectors must have equal length");
    let pa = prefix_sums(&sort_descending(a));
    let pb = prefix_sums(&sort_descending(b));
    pa.iter().zip(pb.iter()).all(|(x, y)| x <= y)
}

/// Per-coordinate domination on single realizations: the x-th largest entry
/// of `a` is `≤` the x-th largest entry of `b` for every x.
///
/// ```
/// use kdchoice_stats::order::is_dominated_by;
/// assert!(is_dominated_by(&[2, 1, 1], &[2, 2, 1]));
/// assert!(!is_dominated_by(&[3, 0, 0], &[2, 2, 2]));
/// ```
pub fn is_dominated_by(a: &[u32], b: &[u32]) -> bool {
    assert_eq!(a.len(), b.len(), "load vectors must have equal length");
    let sa = sort_descending(a);
    let sb = sort_descending(b);
    sa.iter().zip(sb.iter()).all(|(x, y)| x <= y)
}

/// Empirical estimate of the majorization order between two *processes*
/// from many independent realizations of each.
///
/// For each prefix length x it compares the trial-averaged prefix sums
/// `E[B_{≤x}]` (a necessary consequence of Definition 2(ii) via linearity),
/// and reports the largest relative violation
/// `max_x (mean_a(x) − mean_b(x)) / max(mean_b(x), 1)`.
///
/// A process pair satisfying `A ≤mj B` should produce a violation that is
/// zero up to sampling noise; the experiments assert it is below a small
/// tolerance.
///
/// # Panics
///
/// Panics if the trial sets are empty or contain vectors of differing
/// lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MajorizationReport {
    /// Largest relative violation of `E[B^a_{≤x}] ≤ E[B^b_{≤x}]` over x.
    pub max_relative_violation: f64,
    /// The prefix length attaining it.
    pub argmax_prefix: usize,
    /// Fraction of prefix lengths with any violation at all.
    pub violated_fraction: f64,
}

/// Computes a [`MajorizationReport`] for "is `a` majorized by `b`?".
pub fn empirical_majorization(a_trials: &[Vec<u32>], b_trials: &[Vec<u32>]) -> MajorizationReport {
    assert!(
        !a_trials.is_empty() && !b_trials.is_empty(),
        "need at least one trial per process"
    );
    let n = a_trials[0].len();
    assert!(
        a_trials.iter().chain(b_trials.iter()).all(|v| v.len() == n),
        "all trials must have the same number of bins"
    );
    let mean_prefix = |trials: &[Vec<u32>]| -> Vec<f64> {
        let mut acc = vec![0.0f64; n];
        for t in trials {
            for (i, &p) in prefix_sums(&sort_descending(t)).iter().enumerate() {
                acc[i] += p as f64;
            }
        }
        for v in &mut acc {
            *v /= trials.len() as f64;
        }
        acc
    };
    let ma = mean_prefix(a_trials);
    let mb = mean_prefix(b_trials);
    let mut worst = f64::NEG_INFINITY;
    let mut arg = 0usize;
    let mut violated = 0usize;
    for x in 0..n {
        let rel = (ma[x] - mb[x]) / mb[x].max(1.0);
        if rel > worst {
            worst = rel;
            arg = x + 1;
        }
        if rel > 0.0 {
            violated += 1;
        }
    }
    MajorizationReport {
        max_relative_violation: worst.max(0.0),
        argmax_prefix: arg,
        violated_fraction: violated as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_descending_works() {
        assert_eq!(sort_descending(&[]), Vec::<u32>::new());
        assert_eq!(sort_descending(&[5]), vec![5]);
        assert_eq!(sort_descending(&[0, 2, 1, 2]), vec![2, 2, 1, 0]);
    }

    #[test]
    fn prefix_sums_monotone() {
        let p = prefix_sums(&[4, 2, 2, 0]);
        assert_eq!(p, vec![4, 6, 8, 8]);
    }

    #[test]
    fn majorization_is_reflexive() {
        let v = [3u32, 1, 4, 1, 5];
        assert!(is_majorized_by(&v, &v));
        assert!(is_dominated_by(&v, &v));
    }

    #[test]
    fn flatter_vector_is_majorized() {
        // Same total (9): [3,3,3] ⪯ [4,3,2] ⪯ [9,0,0].
        assert!(is_majorized_by(&[3, 3, 3], &[4, 3, 2]));
        assert!(is_majorized_by(&[4, 3, 2], &[9, 0, 0]));
        assert!(is_majorized_by(&[3, 3, 3], &[9, 0, 0]));
        assert!(!is_majorized_by(&[9, 0, 0], &[4, 3, 2]));
    }

    #[test]
    fn majorization_with_fewer_balls() {
        // Strictly smaller everywhere also majorizes upward.
        assert!(is_majorized_by(&[1, 1, 0], &[2, 1, 1]));
    }

    #[test]
    fn domination_implies_majorization() {
        let pairs: [(&[u32], &[u32]); 3] = [
            (&[2, 1, 1], &[2, 2, 1]),
            (&[0, 0, 0], &[1, 0, 0]),
            (&[3, 3, 1], &[3, 3, 2]),
        ];
        for (a, b) in pairs {
            assert!(is_dominated_by(a, b));
            assert!(is_majorized_by(a, b), "domination must imply majorization");
        }
    }

    #[test]
    fn majorization_does_not_imply_domination() {
        // [3,3] ⪯ [5,2] in prefix sums (3≤5, 6≤7) but coordinate 2: 3 > 2.
        assert!(is_majorized_by(&[3, 3], &[5, 2]));
        assert!(!is_dominated_by(&[3, 3], &[5, 2]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn majorization_rejects_length_mismatch() {
        let _ = is_majorized_by(&[1], &[1, 2]);
    }

    #[test]
    fn empirical_majorization_detects_clean_order() {
        let a = vec![vec![2u32, 2, 2]; 10];
        let b = vec![vec![4u32, 1, 1]; 10];
        let r = empirical_majorization(&a, &b);
        assert_eq!(r.max_relative_violation, 0.0);
        assert_eq!(r.violated_fraction, 0.0);
    }

    #[test]
    fn empirical_majorization_detects_violation() {
        let a = vec![vec![5u32, 0, 0]; 10];
        let b = vec![vec![2u32, 2, 2]; 10];
        let r = empirical_majorization(&a, &b);
        assert!(r.max_relative_violation > 0.5);
        assert_eq!(r.argmax_prefix, 1);
        assert!(r.violated_fraction > 0.0);
    }

    #[test]
    fn empirical_majorization_averages_over_trials() {
        // a alternates between flat and spiky; on average still below b.
        let a = vec![vec![3u32, 0, 0], vec![0, 0, 0]];
        let b = vec![vec![2u32, 1, 1], vec![2, 1, 1]];
        let r = empirical_majorization(&a, &b);
        assert_eq!(r.max_relative_violation, 0.0);
    }
}
