//! Integer-valued histograms for bin loads and ball heights.
//!
//! The paper's observables ν_y (number of bins with load ≥ y, Lemma 11) and
//! µ_y (number of balls with height ≥ y, Lemma 2) are suffix sums of exactly
//! these histograms.

use std::fmt;

/// A dense histogram over small non-negative integer values (bin loads and
/// ball heights are `O(log n)` in this problem, so dense storage is ideal).
///
/// ```
/// use kdchoice_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.add(3);
/// h.add(3);
/// h.add(1);
/// assert_eq!(h.count(3), 2);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.count_at_least(2), 2);   // the two 3s
/// assert_eq!(h.max_value(), Some(3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a histogram from `(value, count)` pairs.
    ///
    /// ```
    /// use kdchoice_stats::Histogram;
    /// let h = Histogram::from_pairs([(0, 5), (2, 1)]);
    /// assert_eq!(h.total(), 6);
    /// ```
    pub fn from_pairs<I: IntoIterator<Item = (u32, u64)>>(pairs: I) -> Self {
        let mut h = Self::new();
        for (v, c) in pairs {
            h.add_count(v, c);
        }
        h
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn add(&mut self, value: u32) {
        self.add_count(value, 1);
    }

    /// Records `count` observations of `value`.
    pub fn add_count(&mut self, value: u32, count: u64) {
        let idx = value as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += count;
        self.total += count;
    }

    /// The number of observations equal to `value`.
    pub fn count(&self, value: u32) -> u64 {
        self.counts.get(value as usize).copied().unwrap_or(0)
    }

    /// The total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The number of observations `≥ value` (a suffix sum; this is ν_y / µ_y).
    pub fn count_at_least(&self, value: u32) -> u64 {
        let idx = (value as usize).min(self.counts.len());
        self.counts[idx..].iter().sum()
    }

    /// The largest observed value, or `None` if empty.
    pub fn max_value(&self) -> Option<u32> {
        self.counts.iter().rposition(|&c| c > 0).map(|i| i as u32)
    }

    /// The smallest observed value, or `None` if empty.
    pub fn min_value(&self) -> Option<u32> {
        self.counts.iter().position(|&c| c > 0).map(|i| i as u32)
    }

    /// The mean of the observations; 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u128 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u128 * c as u128)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The nearest-rank `q`-quantile (`0 ≤ q ≤ 1`): the smallest observed
    /// value `v` such that at least `⌈q · total⌉` observations are `≤ v`.
    /// This is the natural quantile for integer observables (latencies in
    /// ticks, loads, heights) — no interpolation between values that can
    /// never occur.
    ///
    /// ## Edge cases (all pinned by tests)
    ///
    /// * **Empty histogram** — returns `None`; there is no observation to
    ///   report, and a silent `0` would be indistinguishable from a real
    ///   zero-valued quantile (callers that want a sentinel opt in with
    ///   `map_or`).
    /// * **`q = 0.0`** — the rank `⌈0 · total⌉ = 0` is clamped to 1, so
    ///   the result is the **minimum** observed value
    ///   ([`Histogram::min_value`]), matching the nearest-rank convention
    ///   that every quantile is an observed value.
    /// * **`q = 1.0`** — rank `total`, i.e. the **maximum** observed
    ///   value ([`Histogram::max_value`]).
    /// * **Single bucket** — every `q` returns that bucket's value.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` (including NaN).
    ///
    /// ```
    /// use kdchoice_stats::Histogram;
    ///
    /// let h = Histogram::from_pairs([(1, 90), (7, 9), (40, 1)]);
    /// assert_eq!(h.quantile(0.0), Some(1));
    /// assert_eq!(h.quantile(0.5), Some(1));
    /// assert_eq!(h.quantile(0.95), Some(7));
    /// assert_eq!(h.quantile(1.0), Some(40));
    /// assert_eq!(Histogram::new().quantile(0.5), None);
    /// ```
    pub fn quantile(&self, q: f64) -> Option<u32> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (v, c) in self.iter() {
            seen += c;
            if seen >= rank {
                return Some(v);
            }
        }
        // The non-zero counts sum to exactly `total >= rank`, so the loop
        // always returns.
        unreachable!("rank {rank} exceeds histogram total {}", self.total)
    }

    /// [`Histogram::quantile`] at several points, as `f64`s (for reports).
    ///
    /// Returns an empty vector when the histogram is empty.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        qs.iter()
            .map(|&q| f64::from(self.quantile(q).expect("non-empty")))
            .collect()
    }

    /// Iterates over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u32, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.add_count(v, c);
        }
    }

    /// A borrowed view of the dense counts, indexed by value.
    pub fn dense_counts(&self) -> &[u64] {
        &self.counts
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total == 0 {
            return write!(f, "(empty histogram)");
        }
        let max = self
            .counts
            .iter()
            .copied()
            .max()
            .expect("non-empty histogram");
        for (v, c) in self.iter() {
            let bar_len = ((c as f64 / max as f64) * 40.0).round() as usize;
            writeln!(f, "{v:>4} | {:<40} {c}", "#".repeat(bar_len))?;
        }
        Ok(())
    }
}

impl FromIterator<u32> for Histogram {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl Extend<u32> for Histogram {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.count_at_least(0), 0);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.min_value(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.to_string(), "(empty histogram)");
    }

    #[test]
    fn counts_and_suffix_sums() {
        let h: Histogram = [0u32, 0, 1, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count_at_least(0), 6);
        assert_eq!(h.count_at_least(1), 4);
        assert_eq!(h.count_at_least(2), 3);
        assert_eq!(h.count_at_least(3), 3);
        assert_eq!(h.count_at_least(4), 0);
        assert_eq!(h.count_at_least(100), 0);
    }

    #[test]
    fn min_max_mean() {
        let h: Histogram = [2u32, 4, 4, 6].into_iter().collect();
        assert_eq!(h.min_value(), Some(2));
        assert_eq!(h.max_value(), Some(6));
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn suffix_sum_is_decreasing() {
        let h: Histogram = (0u32..20).chain(5..15).collect();
        let mut prev = u64::MAX;
        for y in 0..25 {
            let v = h.count_at_least(y);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::from_pairs([(0, 2), (3, 1)]);
        let b = Histogram::from_pairs([(3, 4), (5, 1)]);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(3), 5);
        assert_eq!(a.count(5), 1);
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn iter_skips_zeros() {
        let h = Histogram::from_pairs([(0, 1), (5, 2)]);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (5, 2)]);
    }

    #[test]
    fn quantile_nearest_rank() {
        // 10 observations: 1..=10, one each.
        let h: Histogram = (1u32..=10).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.1), Some(1));
        assert_eq!(h.quantile(0.5), Some(5));
        assert_eq!(h.quantile(0.55), Some(6));
        assert_eq!(h.quantile(0.99), Some(10));
        assert_eq!(h.quantile(1.0), Some(10));
        assert_eq!(Histogram::new().quantile(0.5), None);
        assert!(Histogram::new().quantiles(&[0.5]).is_empty());
        assert_eq!(h.quantiles(&[0.5, 1.0]), vec![5.0, 10.0]);
    }

    #[test]
    fn quantile_single_bucket_is_constant_in_q() {
        // A single bucket (any multiplicity): every quantile is its value.
        for count in [1u64, 7, 1000] {
            let h = Histogram::from_pairs([(5, count)]);
            for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), Some(5), "count={count} q={q}");
            }
        }
    }

    #[test]
    fn quantile_q0_is_min_and_q1_is_max() {
        let h = Histogram::from_pairs([(3, 2), (9, 5), (17, 1)]);
        assert_eq!(h.quantile(0.0), h.min_value());
        assert_eq!(h.quantile(1.0), h.max_value());
    }

    #[test]
    fn empty_histogram_quantile_is_none_not_zero() {
        // The regression this API guards: an empty histogram must not
        // report a silent 0 (indistinguishable from a real 0 quantile).
        let h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None, "q={q}");
        }
        // ...while a histogram genuinely concentrated at 0 reports 0.
        let zeros = Histogram::from_pairs([(0, 10)]);
        assert_eq!(zeros.quantile(0.5), Some(0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_nan() {
        let _ = Histogram::from_pairs([(1, 1)]).quantile(f64::NAN);
    }

    #[test]
    fn quantile_heavy_head() {
        let h = Histogram::from_pairs([(0, 990), (100, 10)]);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(0.99), Some(0));
        assert_eq!(h.quantile(0.995), Some(100));
    }

    #[test]
    fn quantile_is_monotone_in_q() {
        let h = Histogram::from_pairs([(2, 3), (5, 7), (9, 1), (30, 4)]);
        let mut prev = 0u32;
        for i in 0..=50 {
            let v = h.quantile(i as f64 / 50.0).unwrap();
            assert!(v >= prev, "quantile not monotone at {i}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let _ = Histogram::from_pairs([(1, 1)]).quantile(1.5);
    }

    #[test]
    fn display_contains_bars() {
        let h = Histogram::from_pairs([(1, 10)]);
        let s = h.to_string();
        assert!(s.contains('#'));
        assert!(s.contains("10"));
    }

    #[test]
    fn dense_counts_view() {
        let h = Histogram::from_pairs([(2, 3)]);
        assert_eq!(h.dense_counts(), &[0, 0, 3]);
    }
}
