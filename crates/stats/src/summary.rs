//! Streaming univariate summaries (Welford's online algorithm).

use std::fmt;

/// A streaming summary of a sequence of `f64` observations: count, mean,
/// variance (via Welford's numerically stable recurrence), min, and max.
///
/// ```
/// use kdchoice_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), Some(1.0));
/// assert_eq!(s.max(), Some(4.0));
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Same as [`Summary::new`]. (A derived `Default` would zero the
    /// min/max sentinels and corrupt every later `push`.)
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from an iterator of observations.
    ///
    /// ```
    /// use kdchoice_stats::Summary;
    /// let s = Summary::from_iter([2.0, 4.0]);
    /// assert_eq!(s.mean(), 3.0);
    /// ```
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The population variance (divides by n); 0 if fewer than 1 observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// The sample variance (divides by n−1); 0 if fewer than 2 observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// The sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// The standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std() / (self.count as f64).sqrt()
        }
    }

    /// The minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// The maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.sample_std(),
            self.min,
            self.max
        )
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.push(5.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), Some(5.0));
        assert_eq!(s.max(), Some(5.0));
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 * 0.5).collect();
        let s = Summary::from_iter(data.iter().copied());
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_matches_sequential() {
        let a: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..70).map(|i| 3.0 - i as f64 * 0.05).collect();
        let mut merged = Summary::from_iter(a.iter().copied());
        merged.merge(&Summary::from_iter(b.iter().copied()));
        let all = Summary::from_iter(a.into_iter().chain(b));
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_iter([1.0, 2.0]);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_trait_works() {
        let mut s = Summary::new();
        s.extend([1.0, 3.0]);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_iter([1.0]);
        assert!(s.to_string().contains("n=1"));
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let offset = 1e9;
        let s = Summary::from_iter([offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]);
        assert!((s.mean() - (offset + 10.0)).abs() < 1e-3);
        assert!((s.sample_variance() - 30.0).abs() < 1e-3);
    }
}
