//! Two-sample hypothesis tests.
//!
//! Used to check the paper's Property (i) — the serialized process Aσ and the
//! round process A are *equivalent in distribution* — and, in reverse, to
//! confirm that genuinely different processes (e.g. single choice vs
//! two-choice) are told apart.

use crate::special::normal_cdf;

/// The result of a two-sample test: the test statistic and the (asymptotic,
/// two-sided) p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The value of the test statistic (D for KS, |z| for Mann–Whitney).
    pub statistic: f64,
    /// The asymptotic two-sided p-value in `[0, 1]`.
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Computes the KS statistic `D = sup |F₁ − F₂|` between the empirical CDFs
/// of `a` and `b`, and the asymptotic p-value via the Kolmogorov
/// distribution `Q(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`.
///
/// Note: the asymptotic p-value is conservative for heavily tied (discrete)
/// data such as max-load samples; the experiments use it only for *shape*
/// comparison with generous thresholds.
///
/// # Panics
///
/// Panics if either sample is empty.
///
/// ```
/// use kdchoice_stats::tests::ks_two_sample;
///
/// let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
/// let r = ks_two_sample(&a, &b);
/// assert!(r.statistic < 0.05); // nearly identical distributions
/// assert!(r.p_value > 0.9);
/// ```
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> TestResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let (na, nb) = (sa.len(), sb.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < na && j < nb {
        let x = sa[i].min(sb[j]);
        while i < na && sa[i] <= x {
            i += 1;
        }
        while j < nb && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / na as f64;
        let fb = j as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let en = ((na * nb) as f64 / (na + nb) as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    TestResult {
        statistic: d,
        p_value: kolmogorov_q(lambda),
    }
}

/// The Kolmogorov survival function `Q(λ)`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample Mann–Whitney U test (normal approximation with tie
/// correction).
///
/// More sensitive than KS for the small-support integer distributions (max
/// loads take only a handful of values) that dominate this workspace.
///
/// # Panics
///
/// Panics if either sample is empty.
///
/// ```
/// use kdchoice_stats::tests::mann_whitney_u;
///
/// let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
/// let b = vec![11.0, 12.0, 13.0, 14.0, 15.0];
/// let r = mann_whitney_u(&a, &b);
/// assert!(r.p_value < 0.02); // clearly shifted
/// ```
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> TestResult {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "Mann-Whitney needs non-empty samples"
    );
    let na = a.len() as f64;
    let nb = b.len() as f64;
    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|p, q| p.0.total_cmp(&q.0));
    let n = pooled.len();
    let mut rank_sum_a = 0.0f64;
    let mut tie_term = 0.0f64;
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j < n && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let count = (j - i) as f64;
        // Midrank of the tie group (1-based ranks i+1 ..= j).
        let midrank = (i + 1 + j) as f64 / 2.0;
        for p in &pooled[i..j] {
            if p.1 == 0 {
                rank_sum_a += midrank;
            }
        }
        tie_term += count * (count * count - 1.0);
        i = j;
    }
    let u_a = rank_sum_a - na * (na + 1.0) / 2.0;
    let mean_u = na * nb / 2.0;
    let n_tot = na + nb;
    let var_u = na * nb / 12.0 * ((n_tot + 1.0) - tie_term / (n_tot * (n_tot - 1.0)));
    if var_u <= 0.0 {
        // All observations identical: no evidence of difference.
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    // Continuity correction.
    let z = (u_a - mean_u - 0.5 * (u_a - mean_u).signum()) / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    TestResult {
        statistic: z.abs(),
        p_value: p.clamp(0.0, 1.0),
    }
}

#[cfg(test)]
#[allow(clippy::module_inception)] // unit tests of the two-sample `tests` module
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;
    use rand::Rng;

    fn uniform_sample(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut rng = Xoshiro256PlusPlus::from_u64(seed);
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    #[test]
    fn ks_identical_samples_high_p() {
        let a = uniform_sample(1, 500, 0.0, 1.0);
        let r = ks_two_sample(&a, &a);
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn ks_same_distribution_high_p() {
        let a = uniform_sample(1, 800, 0.0, 1.0);
        let b = uniform_sample(2, 800, 0.0, 1.0);
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value > 0.01, "false positive: p={}", r.p_value);
    }

    #[test]
    fn ks_detects_shift() {
        let a = uniform_sample(3, 800, 0.0, 1.0);
        let b = uniform_sample(4, 800, 0.3, 1.3);
        let r = ks_two_sample(&a, &b);
        assert!(r.statistic > 0.2);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn ks_is_symmetric() {
        let a = uniform_sample(5, 300, 0.0, 1.0);
        let b = uniform_sample(6, 400, 0.1, 1.1);
        let r1 = ks_two_sample(&a, &b);
        let r2 = ks_two_sample(&b, &a);
        assert!((r1.statistic - r2.statistic).abs() < 1e-12);
        assert!((r1.p_value - r2.p_value).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn ks_rejects_empty() {
        let _ = ks_two_sample(&[], &[1.0]);
    }

    #[test]
    fn ks_statistic_on_disjoint_supports_is_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 11.0];
        let r = ks_two_sample(&a, &b);
        assert_eq!(r.statistic, 1.0);
    }

    #[test]
    fn kolmogorov_q_boundaries() {
        assert_eq!(kolmogorov_q(0.0), 1.0);
        assert!(kolmogorov_q(0.5) > 0.9);
        assert!(kolmogorov_q(2.0) < 0.001);
    }

    #[test]
    fn mwu_identical_discrete_samples_high_p() {
        // Heavily tied data, like max-load observations.
        let a = vec![3.0, 3.0, 4.0, 4.0, 4.0, 3.0, 4.0, 3.0];
        let r = mann_whitney_u(&a, &a);
        assert!(r.p_value > 0.8, "p={}", r.p_value);
    }

    #[test]
    fn mwu_all_equal_returns_p_one() {
        let a = vec![2.0; 10];
        let b = vec![2.0; 12];
        let r = mann_whitney_u(&a, &b);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn mwu_detects_discrete_shift() {
        let a = vec![3.0; 40];
        let b = vec![4.0; 40];
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn mwu_same_distribution_high_p() {
        let mut rng = Xoshiro256PlusPlus::from_u64(9);
        let a: Vec<f64> = (0..400).map(|_| rng.gen_range(0..5) as f64).collect();
        let b: Vec<f64> = (0..400).map(|_| rng.gen_range(0..5) as f64).collect();
        let r = mann_whitney_u(&a, &b);
        assert!(r.p_value > 0.01, "false positive: p={}", r.p_value);
    }

    #[test]
    fn mwu_is_symmetric_in_p() {
        let a = vec![1.0, 5.0, 2.0, 8.0];
        let b = vec![3.0, 3.0, 9.0];
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }
}
