//! Special functions: `ln Γ`, `erf`, `erfc`, and the standard normal CDF.
//!
//! The theory crate inverts Stirling-type inequalities such as `y! ≤ 48·dk`
//! (Theorem 3) and the hypothesis tests need normal tail probabilities; both
//! are built on the implementations here. No external math crates are used.

/// Natural log of the Gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with the classic g=7, n=9 coefficient set,
/// giving ~15 significant digits over the positive reals.
///
/// # Panics
///
/// Panics if `x ≤ 0` or `x` is not finite.
///
/// ```
/// use kdchoice_stats::special::ln_gamma;
///
/// // Γ(5) = 4! = 24.
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x.is_finite() && x > 0.0,
        "ln_gamma requires finite x > 0, got {x}"
    );
    // Lanczos g = 7, n = 9 coefficients (Godfrey / Numerical Recipes lineage).
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of `n!`, exact dispatch to `ln Γ(n+1)`.
///
/// ```
/// use kdchoice_stats::special::ln_factorial;
/// assert!((ln_factorial(4) - 24f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_factorial(0), 0.0);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        0.0
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is 0).
///
/// ```
/// use kdchoice_stats::special::ln_binomial;
/// assert!((ln_binomial(5, 2) - 10f64.ln()).abs() < 1e-12);
/// assert_eq!(ln_binomial(3, 7), f64::NEG_INFINITY);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The error function `erf(x)`, accurate to ~1.2e-7 (Abramowitz & Stegun
/// 7.1.26), which is ample for p-values in the statistical tests here.
///
/// ```
/// use kdchoice_stats::special::erf;
/// assert!(erf(0.0).abs() < 1e-8);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// The standard normal CDF `Φ(z)`.
///
/// ```
/// use kdchoice_stats::special::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-8);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
/// ```
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            fact *= n as f64;
            assert!(
                (ln_gamma(n as f64 + 1.0) - fact.ln()).abs() < 1e-10,
                "n={n}"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π).
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
        // Γ(3/2) = sqrt(π)/2.
        let want = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - want).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x) at assorted points.
        for &x in &[0.1, 0.7, 1.3, 2.9, 17.5, 123.4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    #[should_panic(expected = "requires finite x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_binomial_symmetry_and_pascal() {
        for n in 1..30u64 {
            for k in 0..=n {
                let a = ln_binomial(n, k);
                let b = ln_binomial(n, n - k);
                assert!((a - b).abs() < 1e-9, "symmetry at ({n},{k})");
            }
        }
        // Pascal: C(10,4) = C(9,3) + C(9,4) -> check in linear space.
        let c = ln_binomial(10, 4).exp();
        let s = ln_binomial(9, 3).exp() + ln_binomial(9, 4).exp();
        assert!((c - s).abs() < 1e-6);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.07;
            assert!((erf(x) + erf(-x)).abs() < 1e-7);
            assert!(erf(x) <= 1.0 && erf(x) >= 0.0);
        }
        assert!((erf(3.0) - 0.9999779).abs() < 1e-5);
    }

    #[test]
    fn erfc_complements() {
        for &x in &[-2.0, -0.3, 0.0, 0.5, 1.7] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(-1.6449) - 0.05).abs() < 1e-3);
        assert!((normal_cdf(1.6449) - 0.95).abs() < 1e-3);
        assert!((normal_cdf(2.5758) - 0.995).abs() < 1e-3);
        assert!(normal_cdf(-8.0) < 1e-6);
        assert!(normal_cdf(8.0) > 1.0 - 1e-6);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = normal_cdf(i as f64 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }
}
