//! Property-based tests of the statistics substrate.

use kdchoice_stats::ci::wilson;
use kdchoice_stats::histogram::Histogram;
use kdchoice_stats::order::{is_dominated_by, is_majorized_by, prefix_sums, sort_descending};
use kdchoice_stats::quantile::{ecdf_sorted, median, quantile_sorted, quantiles};
use kdchoice_stats::special::{erf, ln_binomial, ln_factorial, ln_gamma, normal_cdf};
use kdchoice_stats::summary::Summary;
use kdchoice_stats::tests::{ks_two_sample, mann_whitney_u};
use proptest::prelude::*;

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..100)
}

proptest! {
    /// Welford mean/min/max bracket every observation.
    #[test]
    fn summary_brackets_observations(xs in finite_vec()) {
        let s = Summary::from_iter(xs.iter().copied());
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.count() as usize, xs.len());
        prop_assert!(s.mean() >= min - 1e-6 && s.mean() <= max + 1e-6);
        prop_assert_eq!(s.min().unwrap(), min);
        prop_assert_eq!(s.max().unwrap(), max);
        prop_assert!(s.sample_variance() >= 0.0);
    }

    /// Merging summaries equals summarizing the concatenation.
    #[test]
    fn summary_merge_is_concat(a in finite_vec(), b in finite_vec()) {
        let mut m = Summary::from_iter(a.iter().copied());
        m.merge(&Summary::from_iter(b.iter().copied()));
        let all = Summary::from_iter(a.into_iter().chain(b));
        prop_assert_eq!(m.count(), all.count());
        prop_assert!((m.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((m.sample_variance() - all.sample_variance()).abs()
            < 1e-3 * (1.0 + all.sample_variance()));
    }

    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn quantiles_monotone(xs in finite_vec()) {
        let qs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let vals = quantiles(&xs, &qs);
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(vals[0], min);
        prop_assert_eq!(vals[10], max);
        prop_assert!(median(&xs).unwrap() >= min && median(&xs).unwrap() <= max);
    }

    /// The ECDF is a CDF: monotone, 0 before min, 1 at max.
    #[test]
    fn ecdf_is_a_cdf(mut xs in finite_vec()) {
        xs.sort_by(f64::total_cmp);
        let lo = xs[0];
        let hi = xs[xs.len() - 1];
        prop_assert_eq!(ecdf_sorted(&xs, lo - 1.0), 0.0);
        prop_assert_eq!(ecdf_sorted(&xs, hi), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = lo + (hi - lo) * i as f64 / 20.0;
            let v = ecdf_sorted(&xs, x);
            prop_assert!(v >= prev - 1e-12);
            prev = v;
        }
    }

    /// Histogram totals and suffix sums are consistent.
    #[test]
    fn histogram_consistency(vals in prop::collection::vec(0u32..64, 0..200)) {
        let h: Histogram = vals.iter().copied().collect();
        prop_assert_eq!(h.total() as usize, vals.len());
        prop_assert_eq!(h.count_at_least(0) as usize, vals.len());
        for y in 0..70u32 {
            let expected = vals.iter().filter(|&&v| v >= y).count() as u64;
            prop_assert_eq!(h.count_at_least(y), expected);
        }
        if let Some(max) = h.max_value() {
            prop_assert_eq!(Some(max), vals.iter().copied().max());
        }
    }

    /// Majorization is reflexive; domination implies majorization.
    #[test]
    fn order_relations(a in prop::collection::vec(0u32..20, 1..30)) {
        prop_assert!(is_majorized_by(&a, &a));
        prop_assert!(is_dominated_by(&a, &a));
        // Adding one ball to the largest entry dominates the original.
        let mut b = sort_descending(&a);
        b[0] += 1;
        prop_assert!(is_dominated_by(&a, &b));
        prop_assert!(is_majorized_by(&a, &b));
    }

    /// Prefix sums are monotone and end at the total.
    #[test]
    fn prefix_sums_shape(a in prop::collection::vec(0u32..50, 1..40)) {
        let sorted = sort_descending(&a);
        let ps = prefix_sums(&sorted);
        for w in ps.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*ps.last().unwrap(), a.iter().map(|&x| u64::from(x)).sum::<u64>());
    }

    /// KS statistic is within [0,1]; identical samples give 0.
    #[test]
    fn ks_statistic_bounds(a in finite_vec(), b in finite_vec()) {
        let r = ks_two_sample(&a, &b);
        prop_assert!((0.0..=1.0).contains(&r.statistic));
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        let same = ks_two_sample(&a, &a);
        prop_assert_eq!(same.statistic, 0.0);
    }

    /// MWU p-values are probabilities and symmetric in the inputs.
    #[test]
    fn mwu_p_bounds(a in finite_vec(), b in finite_vec()) {
        let r1 = mann_whitney_u(&a, &b);
        let r2 = mann_whitney_u(&b, &a);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
    }

    /// Wilson intervals are valid probability intervals containing p-hat.
    #[test]
    fn wilson_contains_point_estimate(s in 0u64..=100, extra in 0u64..100) {
        let t = s + extra;
        prop_assume!(t > 0);
        let iv = wilson(s, t, 1.96);
        let p_hat = s as f64 / t as f64;
        prop_assert!(iv.lo >= 0.0 && iv.hi <= 1.0);
        prop_assert!(iv.contains(p_hat));
    }

    /// ln Γ satisfies the recurrence on arbitrary positive reals.
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..500.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-7 * (1.0 + lhs.abs()));
    }

    /// ln n! is increasing and superadditive-ish; matches direct products.
    #[test]
    fn ln_factorial_matches_products(n in 0u64..20) {
        let direct: f64 = (1..=n).map(|i| (i as f64).ln()).sum();
        prop_assert!((ln_factorial(n) - direct).abs() < 1e-8);
    }

    /// Binomials: C(n,0) = C(n,n) = 1 and symmetry.
    #[test]
    fn binomial_symmetry(n in 0u64..60, k in 0u64..60) {
        prop_assume!(k <= n);
        prop_assert!((ln_binomial(n, 0)).abs() < 1e-9);
        prop_assert!((ln_binomial(n, n)).abs() < 1e-9);
        prop_assert!((ln_binomial(n, k) - ln_binomial(n, n - k)).abs() < 1e-7);
    }

    /// erf is odd, bounded, monotone; Φ is a CDF.
    #[test]
    fn erf_and_phi_shapes(x in -6.0f64..6.0, y in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-7);
        prop_assert!(erf(x).abs() <= 1.0);
        if x < y {
            prop_assert!(erf(x) <= erf(y) + 1e-9);
            prop_assert!(normal_cdf(x) <= normal_cdf(y) + 1e-9);
        }
        prop_assert!((0.0..=1.0).contains(&normal_cdf(x)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile interpolation stays within neighbouring order statistics.
    #[test]
    fn quantile_between_neighbours(mut xs in prop::collection::vec(-1e3f64..1e3, 2..50), q in 0.0f64..1.0) {
        xs.sort_by(f64::total_cmp);
        let v = quantile_sorted(&xs, q).unwrap();
        let h = q * (xs.len() - 1) as f64;
        let lo = xs[h.floor() as usize];
        let hi = xs[h.ceil() as usize];
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }
}
