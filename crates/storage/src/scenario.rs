//! The create/read/fail storage workload as a
//! [`kdchoice_expt::Scenario`] named `storage`.

use kdchoice_expt::{Axis, Fields, GridError, GridSpec, Params, Scenario, Value};

use crate::cluster::PlacementPolicy;
use crate::workload::{run_workload, StorageReport, WorkloadConfig};

/// The §1.3 distributed-storage experiment family. The config is the
/// crate's [`WorkloadConfig`] unchanged — the master seed lives inside
/// it, and the runner overrides it per trial.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorageScenario;

impl Scenario for StorageScenario {
    type Config = WorkloadConfig;
    type Record = StorageReport;

    fn name(&self) -> &'static str {
        "storage"
    }

    fn description(&self) -> &'static str {
        "distributed storage: chunk placement, Zipf reads, failure recovery (section 1.3)"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> StorageReport {
        run_workload(&config.clone().with_seed(seed))
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("servers", Value::U64(config.servers as u64)),
            ("k", Value::U64(config.chunks_per_file as u64)),
            ("policy", Value::Str(config.policy.name())),
            ("files", Value::U64(config.files as u64)),
            ("reads", Value::U64(config.reads as u64)),
            ("zipf", Value::F64(config.zipf_exponent)),
            ("failures", Value::U64(config.failures as u64)),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        let s = &record.stats;
        vec![
            ("alive_servers", Value::U64(s.alive_servers as u64)),
            ("total_chunks", Value::U64(s.total_chunks)),
            ("max_load", Value::U64(u64::from(s.max_load))),
            ("mean_load", Value::F64(s.mean_load)),
            ("imbalance", Value::F64(s.imbalance)),
            ("p50_load", Value::F64(record.load_percentiles[0])),
            ("p90_load", Value::F64(record.load_percentiles[1])),
            ("p99_load", Value::F64(record.load_percentiles[2])),
            ("placement_messages", Value::U64(s.placement_messages)),
            ("read_messages", Value::U64(s.read_messages)),
            (
                "create_cost_per_file",
                Value::F64(record.create_cost_per_file),
            ),
            ("read_cost_per_op", Value::F64(record.read_cost_per_op)),
            ("recovered_chunks", Value::U64(s.recovered_chunks)),
            ("recovery_messages", Value::U64(s.recovery_messages)),
        ]
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("servers", "storage servers (default 100)"),
            Axis::new("k", "chunks/replicas per file (default 4)"),
            Axis::new("policy", "kd | two-choice | random (default kd)"),
            Axis::new("d", "probes per file creation for kd (default 2k)"),
            Axis::new("files", "files to create (default servers*10)"),
            Axis::new("reads", "Zipf-popular reads to issue (default servers*20)"),
            Axis::new("zipf", "read popularity exponent (default 0.9)"),
            Axis::new("failures", "servers failed mid-create (default 0)"),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let servers = params.get_usize("servers", 100)?;
        let k = params.get_usize("k", 4)?;
        if servers == 0 || k == 0 {
            return Err(params.bad_value("servers", "servers and k both >= 1"));
        }
        let policy = match params.get_raw("policy").unwrap_or("kd") {
            "kd" => {
                let d = params.get_usize("d", 2 * k)?;
                if d < k {
                    return Err(params.bad_value("d", &format!("d >= k (k={k})")));
                }
                PlacementPolicy::KdChoice { d }
            }
            "two-choice" => PlacementPolicy::PerChunkTwoChoice,
            "random" => PlacementPolicy::Random,
            _ => return Err(params.bad_value("policy", "kd | two-choice | random")),
        };
        let mut config = WorkloadConfig::new(servers, k, policy);
        config.files = params.get_usize("files", config.files)?;
        config.reads = params.get_usize("reads", config.reads)?;
        config.zipf_exponent = params.get_f64("zipf", config.zipf_exponent)?;
        config.failures = params.get_usize("failures", 0)?;
        if config.failures >= servers {
            return Err(params.bad_value("failures", "fewer failures than servers"));
        }
        config.seed = params.get_u64("seed", 0)?;
        Ok(config)
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str("servers=20 k=2 files=100 reads=50 policy=kd,random failures=1")
            .expect("storage smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "ops/sec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_expt::{configs_from_grid, SweepReport, SweepRunner};
    use kdchoice_prng::derive_seed;

    #[test]
    fn storage_sweep_is_bit_identical_to_serial_run_workload() {
        let grid =
            GridSpec::parse_str("servers=30 k=3 policy=kd,two-choice,random failures=2").unwrap();
        let configs = configs_from_grid(&StorageScenario, &grid, 5).unwrap();
        assert_eq!(configs.len(), 3);
        let cells = SweepRunner::new().run_scenario(&StorageScenario, &configs, 3);
        for (cell, config) in cells.iter().zip(&configs) {
            for run in &cell.runs {
                let seed = derive_seed(config.seed, run.trial as u64);
                let serial = run_workload(&config.clone().with_seed(seed));
                assert_eq!(run.record.stats, serial.stats);
                assert_eq!(run.record.policy, serial.policy);
                assert_eq!(run.record.load_percentiles, serial.load_percentiles);
                assert_eq!(run.record.read_cost_per_op, serial.read_cost_per_op);
            }
        }
    }

    #[test]
    fn grid_validates_policy_and_failures() {
        let bad_policy = GridSpec::parse_str("policy=raid5").unwrap();
        assert!(configs_from_grid(&StorageScenario, &bad_policy, 0).is_err());
        let too_many = GridSpec::parse_str("servers=4 failures=4").unwrap();
        assert!(configs_from_grid(&StorageScenario, &too_many, 0).is_err());
        let short_d = GridSpec::parse_str("k=4 d=2").unwrap();
        assert!(configs_from_grid(&StorageScenario, &short_d, 0).is_err());
    }

    #[test]
    fn report_fields_render_valid_json() {
        let grid = GridSpec::parse_str("servers=15 k=2 files=60 reads=30").unwrap();
        let configs = configs_from_grid(&StorageScenario, &grid, 2).unwrap();
        let cells = SweepRunner::new().run_scenario(&StorageScenario, &configs, 2);
        let report = SweepReport::from_cells(&StorageScenario, &configs, &cells);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"storage\""));
            assert!(line.contains("\"imbalance\""));
        }
    }
}
