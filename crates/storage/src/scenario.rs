//! The create/read/fail storage workload as a
//! [`kdchoice_expt::Scenario`] named `storage`.

use kdchoice_expt::{Axis, Fields, GridError, GridSpec, Params, Scenario, Value};

use crate::chunk_cluster::ClusterConfig;
use crate::cluster_workload::{run_cluster_workload, ClusterReport, ClusterWorkloadConfig};
use crate::placement::PlacementPolicy;
use crate::workload::{run_workload, StorageReport, WorkloadConfig};

/// The §1.3 distributed-storage experiment family. The config is the
/// crate's [`WorkloadConfig`] unchanged — the master seed lives inside
/// it, and the runner overrides it per trial.
#[derive(Debug, Clone, Copy, Default)]
pub struct StorageScenario;

impl Scenario for StorageScenario {
    type Config = WorkloadConfig;
    type Record = StorageReport;

    fn name(&self) -> &'static str {
        "storage"
    }

    fn description(&self) -> &'static str {
        "distributed storage: chunk placement, Zipf reads, failure recovery (section 1.3)"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> StorageReport {
        run_workload(&config.clone().with_seed(seed))
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        vec![
            ("servers", Value::U64(config.servers as u64)),
            ("k", Value::U64(config.chunks_per_file as u64)),
            ("policy", Value::Str(config.policy.name())),
            ("files", Value::U64(config.files as u64)),
            ("reads", Value::U64(config.reads as u64)),
            ("zipf", Value::F64(config.zipf_exponent)),
            ("failures", Value::U64(config.failures as u64)),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        let s = &record.stats;
        vec![
            ("alive_servers", Value::U64(s.alive_servers as u64)),
            ("total_chunks", Value::U64(s.total_chunks)),
            ("max_load", Value::U64(u64::from(s.max_load))),
            ("mean_load", Value::F64(s.mean_load)),
            ("imbalance", Value::F64(s.imbalance)),
            ("p50_load", Value::F64(record.load_percentiles[0])),
            ("p90_load", Value::F64(record.load_percentiles[1])),
            ("p99_load", Value::F64(record.load_percentiles[2])),
            ("placement_messages", Value::U64(s.placement_messages)),
            ("read_messages", Value::U64(s.read_messages)),
            (
                "create_cost_per_file",
                Value::F64(record.create_cost_per_file),
            ),
            ("read_cost_per_op", Value::F64(record.read_cost_per_op)),
            ("recovered_chunks", Value::U64(s.recovered_chunks)),
            ("recovery_messages", Value::U64(s.recovery_messages)),
        ]
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("servers", "storage servers (default 100)"),
            Axis::new("k", "chunks/replicas per file (default 4)"),
            Axis::new("policy", "kd | two-choice | random (default kd)"),
            Axis::new("d", "probes per file creation for kd (default 2k)"),
            Axis::new("files", "files to create (default servers*10)"),
            Axis::new("reads", "Zipf-popular reads to issue (default servers*20)"),
            Axis::new("zipf", "read popularity exponent (default 0.9)"),
            Axis::new("failures", "servers failed mid-create (default 0)"),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let servers = params.get_usize("servers", 100)?;
        let k = params.get_usize("k", 4)?;
        if servers == 0 || k == 0 {
            return Err(params.bad_value("servers", "servers and k both >= 1"));
        }
        let policy = match params.get_raw("policy").unwrap_or("kd") {
            "kd" => {
                let d = params.get_usize("d", 2 * k)?;
                if d < k {
                    return Err(params.bad_value("d", &format!("d >= k (k={k})")));
                }
                PlacementPolicy::KdChoice { d }
            }
            "two-choice" => PlacementPolicy::PerChunkTwoChoice,
            "random" => PlacementPolicy::Random,
            _ => return Err(params.bad_value("policy", "kd | two-choice | random")),
        };
        let mut config = WorkloadConfig::new(servers, k, policy);
        config.files = params.get_usize("files", config.files)?;
        config.reads = params.get_usize("reads", config.reads)?;
        config.zipf_exponent = params.get_f64("zipf", config.zipf_exponent)?;
        config.failures = params.get_usize("failures", 0)?;
        if config.failures >= servers {
            return Err(params.bad_value("failures", "fewer failures than servers"));
        }
        config.seed = params.get_u64("seed", 0)?;
        Ok(config)
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str("servers=20 k=2 files=100 reads=50 policy=kd,random failures=1")
            .expect("storage smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "ops/sec"
    }
}

/// The fault-injected replicated cluster experiment family, named
/// `cluster`: heartbeat failure detection, declarative fault plans, and
/// bounded-rate re-replication on top of the same (k,d)-choice placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterScenario;

impl ClusterScenario {
    /// Builds the fault plan selected by the `fault` axis.
    fn build_plan(
        kind: &str,
        failures: usize,
        down_ticks: u64,
        files: usize,
        params: &Params,
    ) -> Result<crate::FaultPlan, GridError> {
        use crate::{FaultEvent, FaultPlan};
        let span = (files as u64).max(2);
        match kind {
            "none" => Ok(FaultPlan::new()),
            "single" => {
                let mut plan = FaultPlan::new().at((span / 2).max(1), FaultEvent::CrashRandom);
                if down_ticks > 0 {
                    plan.push((span / 2).max(1) + down_ticks, FaultEvent::RecoverOldest);
                }
                Ok(plan)
            }
            "storm" => Ok(FaultPlan::new().storm(failures, span)),
            "rack" => {
                Ok(FaultPlan::new().at((span / 2).max(1), FaultEvent::RackOutage { rack: 0 }))
            }
            "churn" => {
                let mut plan = FaultPlan::new();
                for i in 0..failures {
                    let tick = ((i as u64 + 1) * span / (failures as u64 + 1)).max(1);
                    plan.push(tick, FaultEvent::CrashRandom);
                    plan.push(tick + down_ticks.max(1), FaultEvent::RecoverOldest);
                }
                Ok(plan)
            }
            _ => Err(params.bad_value("fault", "none | single | storm | rack | churn")),
        }
    }
}

impl Scenario for ClusterScenario {
    type Config = ClusterWorkloadConfig;
    type Record = ClusterReport;

    fn name(&self) -> &'static str {
        "cluster"
    }

    fn description(&self) -> &'static str {
        "fault-injected replicated cluster: heartbeat detection, bounded-rate re-replication, degradation metrics"
    }

    fn run(&self, config: &Self::Config, seed: u64) -> ClusterReport {
        run_cluster_workload(&config.clone().with_seed(seed))
    }

    fn base_seed(&self, config: &Self::Config) -> u64 {
        config.seed
    }

    fn config_fields(&self, config: &Self::Config) -> Fields {
        let c = &config.cluster;
        vec![
            ("servers", Value::U64(c.servers as u64)),
            ("racks", Value::U64(c.racks as u64)),
            ("k", Value::U64(c.replicas as u64)),
            ("policy", Value::Str(c.policy.name())),
            ("discipline", Value::Str(c.discipline.name().into())),
            ("hb_period", Value::U64(u64::from(c.heartbeat.period))),
            (
                "hb_timeout",
                Value::U64(u64::from(c.heartbeat.timeout_beats)),
            ),
            ("budget", Value::U64(u64::from(c.recovery.budget_per_tick))),
            (
                "ingest_cap",
                Value::U64(u64::from(c.recovery.max_ingest_per_tick)),
            ),
            ("files", Value::U64(config.files as u64)),
            ("reads", Value::U64(config.reads as u64)),
            ("zipf", Value::F64(config.zipf_exponent)),
            ("fault_events", Value::U64(config.plan.len() as u64)),
        ]
    }

    fn record_fields(&self, record: &Self::Record) -> Fields {
        let s = &record.stats;
        let d = &record.degradation;
        vec![
            ("alive_servers", Value::U64(s.alive_servers as u64)),
            ("total_chunks", Value::U64(s.total_chunks)),
            ("max_load", Value::U64(u64::from(s.max_load))),
            ("imbalance", Value::F64(s.imbalance)),
            ("p99_load", Value::F64(record.load_percentiles[2])),
            (
                "create_cost_per_file",
                Value::F64(record.create_cost_per_file),
            ),
            ("read_cost_per_op", Value::F64(record.read_cost_per_op)),
            ("recovered_chunks", Value::U64(s.recovered_chunks)),
            ("recovery_messages", Value::U64(s.recovery_messages)),
            ("crashes", Value::U64(d.crashes)),
            ("detections", Value::U64(d.detections)),
            ("detect_latency_mean", Value::F64(d.detection_latency_mean)),
            ("detect_latency_max", Value::U64(d.detection_latency_max)),
            ("peak_under_replicated", Value::U64(d.peak_under_replicated)),
            ("under_replicated_area", Value::U64(d.under_replicated_area)),
            ("ticks_to_heal", Value::U64(d.ticks_to_heal)),
            ("healed", Value::Bool(d.healed)),
            ("durability_losses", Value::U64(d.durability_losses)),
            ("unavailable_area", Value::U64(d.unavailable_area)),
            ("repair_attempts", Value::U64(d.repair_attempts)),
            ("repair_retries", Value::U64(d.repair_retries)),
            ("failed_writes", Value::U64(d.failed_writes)),
            ("degraded_reads", Value::U64(d.degraded_reads)),
            ("failed_reads", Value::U64(d.failed_reads)),
            ("peak_recovery_queue", Value::U64(d.peak_recovery_queue)),
            ("plan_errors", Value::U64(d.plan_errors)),
        ]
    }

    fn axes(&self) -> &'static [Axis] {
        const AXES: &[Axis] = &[
            Axis::new("servers", "chunkservers (default 64)"),
            Axis::new("racks", "racks, server s in rack s%racks (default 1)"),
            Axis::new("k", "replicas per chunk (default 3)"),
            Axis::new("policy", "kd | two-choice | random (default kd)"),
            Axis::new("d", "probes per placement for kd (default 2k)"),
            Axis::new(
                "discipline",
                "multiplicity | distinct | rack (default distinct)",
            ),
            Axis::new(
                "hb",
                "heartbeat period in ticks, 0 = synchronous (default 0)",
            ),
            Axis::new("timeout", "missed beats tolerated before death (default 2)"),
            Axis::new(
                "budget",
                "repair attempts per tick, 0 = unbounded (default 0)",
            ),
            Axis::new(
                "ingest",
                "repairs a destination accepts per tick, 0 = unbounded",
            ),
            Axis::new("backoff", "retry backoff base in ticks (default 1)"),
            Axis::new("files", "chunks to create (default servers*10)"),
            Axis::new("reads", "Zipf-popular reads (default servers*10)"),
            Axis::new("zipf", "read popularity exponent (default 0.9)"),
            Axis::new(
                "fault",
                "none | single | storm | rack | churn (default none)",
            ),
            Axis::new("failures", "crashes for storm/churn plans (default 4)"),
            Axis::new("down", "ticks a crashed server stays down for single/churn"),
            Axis::new("drain", "max extra ticks to quiesce (default 100000)"),
            Axis::new("seed", "master seed (default: --seed)"),
        ];
        AXES
    }

    fn config_from_params(&self, params: &Params) -> Result<Self::Config, GridError> {
        let servers = params.get_usize("servers", 64)?;
        let k = params.get_usize("k", 3)?;
        if servers == 0 || k == 0 {
            return Err(params.bad_value("servers", "servers and k both >= 1"));
        }
        let policy = match params.get_raw("policy").unwrap_or("kd") {
            "kd" => {
                let d = params.get_usize("d", 2 * k)?;
                if d < k {
                    return Err(params.bad_value("d", &format!("d >= k (k={k})")));
                }
                PlacementPolicy::KdChoice { d }
            }
            "two-choice" => PlacementPolicy::PerChunkTwoChoice,
            "random" => PlacementPolicy::Random,
            _ => return Err(params.bad_value("policy", "kd | two-choice | random")),
        };
        let racks = params.get_usize("racks", 1)?;
        if racks == 0 {
            return Err(params.bad_value("racks", "at least one rack"));
        }
        let discipline = match params.get_raw("discipline").unwrap_or("distinct") {
            "multiplicity" => crate::ReplicaDiscipline::Multiplicity,
            "distinct" => crate::ReplicaDiscipline::DistinctServers,
            "rack" => crate::ReplicaDiscipline::DistinctRacks,
            _ => return Err(params.bad_value("discipline", "multiplicity | distinct | rack")),
        };
        if discipline == crate::ReplicaDiscipline::DistinctServers && servers < k {
            return Err(params.bad_value("servers", "distinct replicas need servers >= k"));
        }
        if discipline == crate::ReplicaDiscipline::DistinctRacks && racks < k {
            return Err(params.bad_value("racks", "rack-distinct replicas need racks >= k"));
        }
        let mut cluster = ClusterConfig::new(servers, k, policy);
        cluster.racks = racks;
        cluster.discipline = discipline;
        cluster.heartbeat = crate::HeartbeatConfig::new(
            u32::try_from(params.get_u64("hb", 0)?)
                .map_err(|_| params.bad_value("hb", "fits in u32"))?,
            u32::try_from(params.get_u64("timeout", 2)?)
                .map_err(|_| params.bad_value("timeout", "fits in u32"))?,
        );
        cluster.recovery = crate::RecoveryConfig {
            budget_per_tick: u32::try_from(params.get_u64("budget", 0)?)
                .map_err(|_| params.bad_value("budget", "fits in u32"))?,
            backoff_base: u32::try_from(params.get_u64("backoff", 1)?)
                .map_err(|_| params.bad_value("backoff", "fits in u32"))?,
            max_ingest_per_tick: u32::try_from(params.get_u64("ingest", 0)?)
                .map_err(|_| params.bad_value("ingest", "fits in u32"))?,
        };
        let mut config = ClusterWorkloadConfig::new(cluster);
        config.files = params.get_usize("files", servers * 10)?;
        config.reads = params.get_usize("reads", servers * 10)?;
        config.zipf_exponent = params.get_f64("zipf", 0.9)?;
        config.drain_cap = params.get_u64("drain", 100_000)?;
        let failures = params.get_usize("failures", 4)?;
        if failures >= servers {
            return Err(params.bad_value("failures", "fewer crashes than servers"));
        }
        let down = params.get_u64("down", 0)?;
        config.plan = Self::build_plan(
            params.get_raw("fault").unwrap_or("none"),
            failures,
            down,
            config.files,
            params,
        )?;
        config.seed = params.get_u64("seed", 0)?;
        Ok(config)
    }

    fn smoke_grid(&self) -> GridSpec {
        GridSpec::parse_str(
            "servers=16 k=2 files=120 reads=60 fault=none,storm failures=3 budget=2 hb=2 timeout=1",
        )
        .expect("cluster smoke grid")
    }

    fn throughput_unit(&self) -> &'static str {
        "ops/sec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_expt::{configs_from_grid, SweepReport, SweepRunner};
    use kdchoice_prng::derive_seed;

    #[test]
    fn storage_sweep_is_bit_identical_to_serial_run_workload() {
        let grid =
            GridSpec::parse_str("servers=30 k=3 policy=kd,two-choice,random failures=2").unwrap();
        let configs = configs_from_grid(&StorageScenario, &grid, 5).unwrap();
        assert_eq!(configs.len(), 3);
        let cells = SweepRunner::new().run_scenario(&StorageScenario, &configs, 3);
        for (cell, config) in cells.iter().zip(&configs) {
            for run in &cell.runs {
                let seed = derive_seed(config.seed, run.trial as u64);
                let serial = run_workload(&config.clone().with_seed(seed));
                assert_eq!(run.record.stats, serial.stats);
                assert_eq!(run.record.policy, serial.policy);
                assert_eq!(run.record.load_percentiles, serial.load_percentiles);
                assert_eq!(run.record.read_cost_per_op, serial.read_cost_per_op);
            }
        }
    }

    #[test]
    fn grid_validates_policy_and_failures() {
        let bad_policy = GridSpec::parse_str("policy=raid5").unwrap();
        assert!(configs_from_grid(&StorageScenario, &bad_policy, 0).is_err());
        let too_many = GridSpec::parse_str("servers=4 failures=4").unwrap();
        assert!(configs_from_grid(&StorageScenario, &too_many, 0).is_err());
        let short_d = GridSpec::parse_str("k=4 d=2").unwrap();
        assert!(configs_from_grid(&StorageScenario, &short_d, 0).is_err());
    }

    #[test]
    fn cluster_grid_validates_fault_kind_and_discipline() {
        let bad_fault = GridSpec::parse_str("fault=meteor").unwrap();
        assert!(configs_from_grid(&ClusterScenario, &bad_fault, 0).is_err());
        let bad_discipline = GridSpec::parse_str("discipline=spread").unwrap();
        assert!(configs_from_grid(&ClusterScenario, &bad_discipline, 0).is_err());
        let few_racks = GridSpec::parse_str("k=3 racks=2 discipline=rack").unwrap();
        assert!(configs_from_grid(&ClusterScenario, &few_racks, 0).is_err());
        let ok = GridSpec::parse_str("k=3 racks=3 discipline=rack fault=rack hb=2").unwrap();
        let configs = configs_from_grid(&ClusterScenario, &ok, 1).unwrap();
        assert_eq!(configs.len(), 1);
        assert_eq!(configs[0].plan.len(), 1);
    }

    #[test]
    fn cluster_smoke_grid_runs_and_renders_json() {
        let configs =
            configs_from_grid(&ClusterScenario, &ClusterScenario.smoke_grid(), 9).unwrap();
        assert_eq!(configs.len(), 2);
        let cells = SweepRunner::new().run_scenario(&ClusterScenario, &configs, 1);
        let report = SweepReport::from_cells(&ClusterScenario, &configs, &cells);
        let mut saw_storm_effect = false;
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"cluster\""));
            assert!(line.contains("\"peak_under_replicated\""));
            saw_storm_effect |= line.contains("\"crashes\": 3");
        }
        assert!(saw_storm_effect, "the storm grid cell must crash 3 servers");
    }

    #[test]
    fn report_fields_render_valid_json() {
        let grid = GridSpec::parse_str("servers=15 k=2 files=60 reads=30").unwrap();
        let configs = configs_from_grid(&StorageScenario, &grid, 2).unwrap();
        let cells = SweepRunner::new().run_scenario(&StorageScenario, &configs, 2);
        let report = SweepReport::from_cells(&StorageScenario, &configs, &cells);
        for line in report.to_jsonl().lines() {
            kdchoice_expt::validate_json(line).unwrap();
            assert!(line.contains("\"scenario\": \"storage\""));
            assert!(line.contains("\"imbalance\""));
        }
    }
}
