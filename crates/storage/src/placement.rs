//! Placement policies and destination selection, shared by the legacy
//! synchronous [`crate::StorageCluster`] and the fault-injected
//! [`crate::ChunkCluster`].
//!
//! Two selection routines live here:
//!
//! - [`choose_destinations`] is the original §1.3 selection, *bit-exact*
//!   with the pre-refactor `StorageCluster::place`: probes are drawn with
//!   replacement and the multiplicity rule lets one server receive
//!   several chunks of a file. Both clusters call it, so the legacy
//!   `storage` scenario stream is reproducible from either.
//! - [`choose_constrained`] enforces replica *distinctness* (no two
//!   replicas of a chunk on one server, optionally no two on one rack)
//!   by greedy selection over sorted probe slots with bounded re-probe
//!   rounds — the hypergraph-probe model where probe sets are correlated
//!   by rack.

use std::borrow::Cow;

use kdchoice_prng::sample::UniformBin;
use rand::{Rng, RngCore};

/// How a file's `k` chunks (or a chunk's `k` replicas) pick their servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlacementPolicy {
    /// The paper's scheme: sample `d` alive servers i.u.r. (with
    /// replacement) and store the `k` chunks on the `k` least loaded,
    /// multiplicities respected. Placement costs `d` probe messages; a read
    /// costs `k + 1` (one directory lookup + `k` fetches).
    KdChoice {
        /// Probes per file creation (`d ≥ k`).
        d: usize,
    },
    /// Each chunk independently picks the less loaded of 2 sampled servers.
    /// Placement costs `2k` probes; §1.3 charges reads `2k` messages (two
    /// candidate locations per chunk must be addressed).
    PerChunkTwoChoice,
    /// Each chunk goes to a uniformly random alive server; no probes; reads
    /// cost `k + 1` via the directory.
    Random,
}

impl PlacementPolicy {
    /// Display name.
    ///
    /// Parameter-free policies return a borrowed `&'static str` — no
    /// allocation on reporting paths; `KdChoice` formats once per call,
    /// so report builders cache it per run (as
    /// [`crate::StorageReport`] does) rather than fetching per event.
    pub fn name(&self) -> Cow<'static, str> {
        match self {
            PlacementPolicy::KdChoice { d } => Cow::Owned(format!("(k,{d})-choice")),
            PlacementPolicy::PerChunkTwoChoice => Cow::Borrowed("per-chunk 2-choice"),
            PlacementPolicy::Random => Cow::Borrowed("random"),
        }
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Places `count` chunks on servers chosen by `policy` among `alive`,
/// reading per-server chunk counts through `load` and relative capacities
/// through `capacity`; returns `(destinations, probe_messages)`.
///
/// This is the legacy multiplicity-respecting selection: the probe and
/// tie-break RNG stream is identical to the original
/// `StorageCluster::place`, which the bit-identical `storage`-scenario
/// lock depends on.
///
/// # Panics
///
/// Panics if `alive` is empty or a `KdChoice` policy probes fewer than
/// `count` slots.
pub(crate) fn choose_destinations<R, L, C>(
    policy: PlacementPolicy,
    alive: &[usize],
    load: L,
    capacity: C,
    count: usize,
    rng: &mut R,
) -> (Vec<usize>, u64)
where
    R: RngCore + ?Sized,
    L: Fn(usize) -> u32,
    C: Fn(usize) -> f64,
{
    assert!(!alive.is_empty(), "no alive servers left");
    let effective = |s: usize| f64::from(load(s)) / capacity(s);
    match policy {
        PlacementPolicy::Random => {
            let pick = UniformBin::new(alive.len());
            let dest = (0..count).map(|_| alive[pick.sample(rng)]).collect();
            (dest, 0)
        }
        PlacementPolicy::PerChunkTwoChoice => {
            let pick = UniformBin::new(alive.len());
            let mut dest = Vec::with_capacity(count);
            for _ in 0..count {
                let a = alive[pick.sample(rng)];
                let b = alive[pick.sample(rng)];
                let (la, lb) = (effective(a), effective(b));
                // Note: loads within a single file placement are read
                // once; simultaneous chunk placements of one file do not
                // see each other — matching independent per-chunk
                // placement.
                let chosen = if la < lb {
                    a
                } else if lb < la {
                    b
                } else if rng.gen_bool(0.5) {
                    a
                } else {
                    b
                };
                dest.push(chosen);
            }
            (dest, 2 * count as u64)
        }
        PlacementPolicy::KdChoice { d } => {
            // Sample d alive servers with replacement; take the `count`
            // least loaded slots with the multiplicity rule (tentative
            // heights (load+occ)/capacity, ties broken randomly).
            let pick = UniformBin::new(alive.len());
            let mut sampled: Vec<usize> = (0..d).map(|_| alive[pick.sample(rng)]).collect();
            sampled.sort_unstable();
            let mut slots: Vec<(f64, u64, usize)> = Vec::with_capacity(d);
            let mut i = 0;
            while i < sampled.len() {
                let s = sampled[i];
                let base = load(s);
                let cap = capacity(s);
                let mut occ = 0u32;
                while i < sampled.len() && sampled[i] == s {
                    occ += 1;
                    slots.push((f64::from(base + occ) / cap, rng.next_u64(), s));
                    i += 1;
                }
            }
            assert!(
                count <= slots.len(),
                "placement needs at least k sampled slots"
            );
            if count < slots.len() {
                slots.select_nth_unstable_by(count - 1, |a, b| {
                    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
                });
            }
            (
                slots[..count].iter().map(|&(_, _, s)| s).collect(),
                d as u64,
            )
        }
    }
}

/// How many fresh probe rounds [`choose_constrained`] spends before
/// returning a shortfall (each round costs the policy's probe messages).
const MAX_PROBE_ROUNDS: usize = 4;

/// Places up to `count` replicas on *distinct* servers drawn from `alive`,
/// skipping servers where `forbidden` holds and — when `rack_aware` —
/// racks already occupied (`rack_used`) or picked earlier in this call.
///
/// Returns `(destinations, probe_messages)`; `destinations.len()` may be
/// smaller than `count` when the constraints exhaust the eligible set
/// (the caller keeps the missing replicas pending and retries later, so
/// degradation is graceful rather than a panic).
///
/// Probe/message accounting mirrors [`choose_destinations`]: `Random`
/// spends no probe messages, `PerChunkTwoChoice` spends 2 per replica,
/// `KdChoice { d }` spends `d` per probe round.
#[allow(clippy::too_many_arguments)]
pub(crate) fn choose_constrained<R, L, C, F, K>(
    policy: PlacementPolicy,
    alive: &[usize],
    load: L,
    capacity: C,
    rack_of: K,
    rack_aware: bool,
    forbidden: F,
    rack_used: &[usize],
    count: usize,
    rng: &mut R,
) -> (Vec<usize>, u64)
where
    R: RngCore + ?Sized,
    L: Fn(usize) -> u32,
    C: Fn(usize) -> f64,
    F: Fn(usize) -> bool,
    K: Fn(usize) -> usize,
{
    let mut chosen: Vec<usize> = Vec::with_capacity(count);
    let mut racks_taken: Vec<usize> = rack_used.to_vec();
    let mut messages = 0u64;
    let effective = |s: usize| f64::from(load(s)) / capacity(s);
    let eligible = |s: usize, chosen: &[usize], racks_taken: &[usize]| {
        !forbidden(s) && !chosen.contains(&s) && (!rack_aware || !racks_taken.contains(&rack_of(s)))
    };

    match policy {
        PlacementPolicy::Random => {
            for _ in 0..count {
                let pool: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&s| eligible(s, &chosen, &racks_taken))
                    .collect();
                if pool.is_empty() {
                    break;
                }
                let s = pool[UniformBin::new(pool.len()).sample(rng)];
                if rack_aware {
                    racks_taken.push(rack_of(s));
                }
                chosen.push(s);
            }
        }
        PlacementPolicy::PerChunkTwoChoice => {
            for _ in 0..count {
                let pool: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&s| eligible(s, &chosen, &racks_taken))
                    .collect();
                if pool.is_empty() {
                    break;
                }
                messages += 2;
                let pick = UniformBin::new(pool.len());
                let a = pool[pick.sample(rng)];
                let b = pool[pick.sample(rng)];
                let (la, lb) = (effective(a), effective(b));
                let s = if la < lb {
                    a
                } else if lb < la {
                    b
                } else if rng.gen_bool(0.5) {
                    a
                } else {
                    b
                };
                if rack_aware {
                    racks_taken.push(rack_of(s));
                }
                chosen.push(s);
            }
        }
        PlacementPolicy::KdChoice { d } => {
            for _ in 0..MAX_PROBE_ROUNDS {
                if chosen.len() == count {
                    break;
                }
                let pool: Vec<usize> = alive
                    .iter()
                    .copied()
                    .filter(|&s| eligible(s, &chosen, &racks_taken))
                    .collect();
                if pool.is_empty() {
                    break;
                }
                messages += d as u64;
                let pick = UniformBin::new(pool.len());
                let mut sampled: Vec<usize> = (0..d).map(|_| pool[pick.sample(rng)]).collect();
                sampled.sort_unstable();
                let mut slots: Vec<(f64, u64, usize)> = Vec::with_capacity(d);
                let mut i = 0;
                while i < sampled.len() {
                    let s = sampled[i];
                    let base = load(s);
                    let cap = capacity(s);
                    let mut occ = 0u32;
                    while i < sampled.len() && sampled[i] == s {
                        occ += 1;
                        slots.push((f64::from(base + occ) / cap, rng.next_u64(), s));
                        i += 1;
                    }
                }
                slots.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for &(_, _, s) in &slots {
                    if chosen.len() == count {
                        break;
                    }
                    if eligible(s, &chosen, &racks_taken) {
                        if rack_aware {
                            racks_taken.push(rack_of(s));
                        }
                        chosen.push(s);
                    }
                }
            }
        }
    }
    (chosen, messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn constrained_kd_yields_distinct_servers() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        let alive: Vec<usize> = (0..10).collect();
        for _ in 0..200 {
            let (dest, msgs) = choose_constrained(
                PlacementPolicy::KdChoice { d: 6 },
                &alive,
                |_| 0,
                |_| 1.0,
                |s| s,
                false,
                |_| false,
                &[],
                3,
                &mut rng,
            );
            assert_eq!(dest.len(), 3);
            let mut sorted = dest.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must land on distinct servers");
            assert!(msgs >= 6);
        }
    }

    #[test]
    fn constrained_rack_aware_yields_distinct_racks() {
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let alive: Vec<usize> = (0..12).collect();
        // 4 racks of 3 servers each: rack = s % 4.
        for policy in [
            PlacementPolicy::KdChoice { d: 8 },
            PlacementPolicy::PerChunkTwoChoice,
            PlacementPolicy::Random,
        ] {
            for _ in 0..100 {
                let (dest, _) = choose_constrained(
                    policy,
                    &alive,
                    |_| 0,
                    |_| 1.0,
                    |s| s % 4,
                    true,
                    |_| false,
                    &[],
                    3,
                    &mut rng,
                );
                assert_eq!(dest.len(), 3, "{policy}");
                let mut racks: Vec<usize> = dest.iter().map(|&s| s % 4).collect();
                racks.sort_unstable();
                racks.dedup();
                assert_eq!(racks.len(), 3, "{policy}: replicas must span racks");
            }
        }
    }

    #[test]
    fn constrained_reports_shortfall_instead_of_panicking() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        // Only 2 eligible servers but 4 replicas wanted.
        let alive: Vec<usize> = vec![0, 1, 2];
        let (dest, _) = choose_constrained(
            PlacementPolicy::KdChoice { d: 4 },
            &alive,
            |_| 0,
            |_| 1.0,
            |s| s,
            false,
            |s| s == 2,
            &[],
            4,
            &mut rng,
        );
        assert_eq!(dest.len(), 2, "shortfall returned, not panicked");
    }

    #[test]
    fn forbidden_servers_are_never_chosen() {
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let alive: Vec<usize> = (0..8).collect();
        for _ in 0..100 {
            let (dest, _) = choose_constrained(
                PlacementPolicy::Random,
                &alive,
                |_| 0,
                |_| 1.0,
                |s| s,
                false,
                |s| s % 2 == 0,
                &[],
                2,
                &mut rng,
            );
            assert!(dest.iter().all(|&s| s % 2 == 1), "{dest:?}");
        }
    }
}
