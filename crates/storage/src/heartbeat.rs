//! Heartbeats: periodic load reports and missed-heartbeat failure
//! detection.
//!
//! Chunkservers report their load to the master every
//! [`HeartbeatConfig::period`] ticks; placement probes read these
//! possibly-stale snapshots instead of true loads, so probe decisions act
//! on stale information exactly like the distributed rounds of the
//! 1-2-3-Toolkit model (PAPERS.md). A server that stops heartbeating is
//! only marked dead after [`HeartbeatConfig::timeout_beats`] reporting
//! periods pass with no report — the *detection latency* observable.
//!
//! `period == 0` is the synchronous degenerate mode: snapshots always
//! equal true loads and crashes are detected in the same tick, which is
//! one leg of the legacy bit-identical equivalence lock.

/// Heartbeat timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Ticks between load reports. `0` = synchronous: placement reads
    /// true loads and failures are detected instantly.
    pub period: u32,
    /// Full missed periods tolerated before a silent server is declared
    /// dead; the detection deadline is `last_heard + period * (timeout_beats + 1)`.
    pub timeout_beats: u32,
}

impl HeartbeatConfig {
    /// The synchronous configuration: no staleness, instant detection.
    pub const fn synchronous() -> Self {
        Self {
            period: 0,
            timeout_beats: 0,
        }
    }

    /// A heartbeat every `period` ticks with `timeout_beats` tolerated
    /// misses.
    pub const fn new(period: u32, timeout_beats: u32) -> Self {
        Self {
            period,
            timeout_beats,
        }
    }
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        Self::synchronous()
    }
}

/// The master's per-server heartbeat state: last reported load and the
/// tick it was last heard from.
#[derive(Debug, Clone, Default)]
pub struct HeartbeatTable {
    reported: Vec<u32>,
    last_heard: Vec<u64>,
}

impl HeartbeatTable {
    /// A table for `servers` servers, all considered heard at tick 0 with
    /// zero load.
    pub fn new(servers: usize) -> Self {
        Self {
            reported: vec![0; servers],
            last_heard: vec![0; servers],
        }
    }

    /// Registers one more server (a node join), heard `now` with zero load.
    pub fn push(&mut self, now: u64) {
        self.reported.push(0);
        self.last_heard.push(now);
    }

    /// Records a heartbeat from `server` carrying its current `load`.
    pub fn report(&mut self, server: usize, load: u32, now: u64) {
        self.reported[server] = load;
        self.last_heard[server] = now;
    }

    /// The last load `server` reported (possibly stale).
    pub fn snapshot(&self, server: usize) -> u32 {
        self.reported[server]
    }

    /// The tick `server` was last heard from.
    pub fn last_heard(&self, server: usize) -> u64 {
        self.last_heard[server]
    }

    /// Whether the master should declare `server` dead at `now`: it has
    /// been silent past the timeout deadline. With `period == 0` any
    /// silence (a crashed server) is overdue immediately.
    pub fn overdue(&self, server: usize, now: u64, config: HeartbeatConfig) -> bool {
        if config.period == 0 {
            return true;
        }
        let deadline = u64::from(config.period) * (u64::from(config.timeout_beats) + 1);
        now.saturating_sub(self.last_heard[server]) > deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_mode_is_always_overdue() {
        let table = HeartbeatTable::new(2);
        assert!(table.overdue(0, 0, HeartbeatConfig::synchronous()));
        assert!(table.overdue(1, 100, HeartbeatConfig::synchronous()));
    }

    #[test]
    fn detection_waits_for_the_timeout_deadline() {
        let config = HeartbeatConfig::new(5, 1);
        let mut table = HeartbeatTable::new(1);
        table.report(0, 7, 10);
        // Deadline = last_heard + period * (timeout_beats + 1) = 10 + 10.
        assert!(!table.overdue(0, 15, config));
        assert!(!table.overdue(0, 20, config));
        assert!(table.overdue(0, 21, config));
        assert_eq!(table.snapshot(0), 7);
    }

    #[test]
    fn fresh_reports_reset_the_clock_and_the_snapshot() {
        let config = HeartbeatConfig::new(2, 0);
        let mut table = HeartbeatTable::new(1);
        table.report(0, 3, 4);
        assert!(!table.overdue(0, 6, config));
        assert!(table.overdue(0, 7, config));
        table.report(0, 9, 6);
        assert!(!table.overdue(0, 8, config));
        assert_eq!(table.snapshot(0), 9);
        assert_eq!(table.last_heard(0), 6);
    }

    #[test]
    fn joins_extend_the_table() {
        let mut table = HeartbeatTable::new(1);
        table.push(42);
        assert_eq!(table.last_heard(1), 42);
        assert_eq!(table.snapshot(1), 0);
    }
}
