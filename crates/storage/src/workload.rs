//! A scripted create/read/fail workload over the storage cluster.

use kdchoice_prng::dist::Zipf;
use kdchoice_prng::Xoshiro256PlusPlus;
use kdchoice_stats::quantile::quantiles;

use crate::cluster::{StorageCluster, StorageStats};
use crate::placement::PlacementPolicy;

/// Configuration of a storage workload run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadConfig {
    /// Number of servers.
    pub servers: usize,
    /// Chunks (or replicas) per file, `k`.
    pub chunks_per_file: usize,
    /// Placement policy.
    pub policy: PlacementPolicy,
    /// Files to create.
    pub files: usize,
    /// Read operations to issue (Zipf-popular files).
    pub reads: usize,
    /// Zipf exponent for read popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Servers to fail, evenly spread through the create phase.
    pub failures: usize,
    /// Master seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// A sensible default workload.
    pub fn new(servers: usize, chunks_per_file: usize, policy: PlacementPolicy) -> Self {
        Self {
            servers,
            chunks_per_file,
            policy,
            files: servers * 10,
            reads: servers * 20,
            zipf_exponent: 0.9,
            failures: 0,
            seed: 0,
        }
    }

    /// Sets the number of mid-workload server failures.
    #[must_use]
    pub fn with_failures(mut self, failures: usize) -> Self {
        self.failures = failures;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Results of one storage workload run.
#[derive(Debug, Clone)]
pub struct StorageReport {
    /// Policy name.
    pub policy: String,
    /// Final cluster statistics.
    pub stats: StorageStats,
    /// Load percentiles `[p50, p90, p99]` over alive servers.
    pub load_percentiles: [f64; 3],
    /// Mean messages per read operation.
    pub read_cost_per_op: f64,
    /// Mean probe messages per file creation.
    pub create_cost_per_file: f64,
}

/// Runs the scripted workload: create `files` files (failures injected at
/// even intervals), then issue `reads` Zipf-popular reads.
///
/// # Panics
///
/// Panics if the configuration would kill all servers, or on invalid
/// parameters (propagated from [`StorageCluster`] / [`Zipf`]).
///
/// ```
/// use kdchoice_storage::{run_workload, PlacementPolicy, WorkloadConfig};
///
/// let cfg = WorkloadConfig::new(50, 4, PlacementPolicy::KdChoice { d: 8 })
///     .with_failures(2)
///     .with_seed(7);
/// let report = run_workload(&cfg);
/// assert_eq!(report.stats.alive_servers, 48);
/// assert!((report.read_cost_per_op - 5.0).abs() < 1e-9); // k+1
/// ```
pub fn run_workload(config: &WorkloadConfig) -> StorageReport {
    assert!(config.failures < config.servers, "cannot fail every server");
    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let mut cluster = StorageCluster::new(config.servers, config.chunks_per_file, config.policy);

    // Create phase with failures at even intervals.
    let failure_every = if config.failures > 0 {
        (config.files / (config.failures + 1)).max(1)
    } else {
        usize::MAX
    };
    let mut failures_done = 0usize;
    for f in 0..config.files {
        cluster.create_file(&mut rng);
        if failures_done < config.failures && (f + 1) % failure_every == 0 {
            cluster
                .fail_random_server(&mut rng)
                .expect("failures < servers, so a victim always exists");
            failures_done += 1;
        }
    }
    while failures_done < config.failures {
        cluster
            .fail_random_server(&mut rng)
            .expect("failures < servers, so a victim always exists");
        failures_done += 1;
    }

    // Read phase: Zipf-popular files.
    if config.files > 0 && config.reads > 0 {
        let zipf = Zipf::new(config.files, config.zipf_exponent).expect("valid zipf");
        for _ in 0..config.reads {
            let file = zipf.sample(&mut rng) as u32;
            cluster.read_file(file);
        }
    }

    let stats = cluster.stats();
    let loads: Vec<f64> = cluster
        .alive_loads()
        .iter()
        .map(|&l| f64::from(l))
        .collect();
    let pct = quantiles(&loads, &[0.5, 0.9, 0.99]);
    let load_percentiles = if pct.len() == 3 {
        [pct[0], pct[1], pct[2]]
    } else {
        [0.0; 3]
    };
    StorageReport {
        policy: config.policy.name().into_owned(),
        stats,
        load_percentiles,
        read_cost_per_op: if config.reads > 0 {
            stats.read_messages as f64 / config.reads as f64
        } else {
            0.0
        },
        create_cost_per_file: if config.files > 0 {
            stats.placement_messages as f64 / config.files as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let cfg = WorkloadConfig::new(40, 3, PlacementPolicy::KdChoice { d: 6 }).with_seed(1);
        let a = run_workload(&cfg);
        let b = run_workload(&cfg);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn failures_reduce_alive_count_but_conserve_chunks() {
        let cfg = WorkloadConfig::new(30, 3, PlacementPolicy::KdChoice { d: 6 })
            .with_failures(5)
            .with_seed(2);
        let r = run_workload(&cfg);
        assert_eq!(r.stats.alive_servers, 25);
        assert_eq!(r.stats.total_chunks, (cfg.files * 3) as u64);
        assert!(r.stats.recovered_chunks > 0);
        assert!(r.stats.recovery_messages >= r.stats.recovered_chunks);
    }

    #[test]
    fn read_costs_favor_kd_over_per_chunk_two_choice() {
        let kd = run_workload(
            &WorkloadConfig::new(40, 4, PlacementPolicy::KdChoice { d: 8 }).with_seed(3),
        );
        let two = run_workload(
            &WorkloadConfig::new(40, 4, PlacementPolicy::PerChunkTwoChoice).with_seed(3),
        );
        assert_eq!(kd.read_cost_per_op, 5.0);
        assert_eq!(two.read_cost_per_op, 8.0);
        // §1.3: "approximately half".
        assert!(kd.read_cost_per_op < 0.7 * two.read_cost_per_op);
    }

    #[test]
    fn kd_balances_better_than_random() {
        let kd = run_workload(
            &WorkloadConfig::new(60, 3, PlacementPolicy::KdChoice { d: 9 }).with_seed(4),
        );
        let rnd = run_workload(&WorkloadConfig::new(60, 3, PlacementPolicy::Random).with_seed(4));
        assert!(
            kd.stats.imbalance < rnd.stats.imbalance,
            "kd {} vs random {}",
            kd.stats.imbalance,
            rnd.stats.imbalance
        );
    }

    #[test]
    fn zero_reads_and_files_are_handled() {
        let mut cfg = WorkloadConfig::new(10, 2, PlacementPolicy::Random).with_seed(5);
        cfg.files = 0;
        cfg.reads = 0;
        let r = run_workload(&cfg);
        assert_eq!(r.stats.total_chunks, 0);
        assert_eq!(r.read_cost_per_op, 0.0);
        assert_eq!(r.create_cost_per_file, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot fail every server")]
    fn all_failures_rejected() {
        let cfg = WorkloadConfig::new(3, 1, PlacementPolicy::Random).with_failures(3);
        let _ = run_workload(&cfg);
    }
}
