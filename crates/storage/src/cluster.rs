//! The legacy synchronous storage cluster: servers, chunk placement,
//! reads, and instantaneous failure recovery.
//!
//! [`StorageCluster`] heals atomically: `fail_server` re-replicates every
//! lost chunk before returning. The fault-injected, virtual-clock
//! counterpart with heartbeats and bounded-rate recovery is
//! [`crate::ChunkCluster`]; configured with zero heartbeat lag and an
//! unbounded recovery budget it reproduces this cluster's RNG stream
//! bit-identically (locked by the `legacy_equivalence` integration test).

use kdchoice_core::LoadVector;
use kdchoice_prng::sample::UniformBin;
use rand::RngCore;

use crate::placement::{choose_destinations, PlacementPolicy};

/// Errors from cluster fault operations.
///
/// Fault plans may legitimately target servers that another event already
/// killed (overlapping rack outages, double crashes); these are reported
/// as values so callers degrade gracefully instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterError {
    /// The targeted server is already dead.
    AlreadyDead {
        /// The server in question.
        server: usize,
    },
    /// The targeted server id is out of range.
    UnknownServer {
        /// The server in question.
        server: usize,
    },
    /// No alive server is available for the operation (killing the last
    /// chunk-holding server, or sampling a victim from an empty cluster).
    NoAliveServers,
    /// The targeted server is not down, so it cannot be recovered.
    NotDown {
        /// The server in question.
        server: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::AlreadyDead { server } => write!(f, "server {server} is already dead"),
            ClusterError::UnknownServer { server } => write!(f, "unknown server {server}"),
            ClusterError::NoAliveServers => write!(f, "no alive servers left"),
            ClusterError::NotDown { server } => write!(f, "server {server} is not down"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// One stored chunk's identity: `(file, chunk index)`.
type ChunkId = (u32, u16);

/// A storage server.
#[derive(Debug, Clone)]
struct Server {
    /// Chunks held, for recovery enumeration.
    chunks: Vec<ChunkId>,
    alive: bool,
    /// Relative capacity; placement compares `chunks/capacity` so that a
    /// 2x-capacity server absorbs 2x the chunks (heterogeneous clusters).
    capacity: f64,
}

/// Message-cost and load statistics of a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageStats {
    /// Alive servers.
    pub alive_servers: usize,
    /// Total chunks stored on alive servers.
    pub total_chunks: u64,
    /// Maximum chunks on any alive server.
    pub max_load: u32,
    /// Mean chunks per alive server.
    pub mean_load: f64,
    /// `max_load / mean_load` (1.0 when empty).
    pub imbalance: f64,
    /// Probe messages spent on placement so far.
    pub placement_messages: u64,
    /// Messages spent on reads so far.
    pub read_messages: u64,
    /// Chunks re-replicated due to failures so far.
    pub recovered_chunks: u64,
    /// Probe messages spent during recovery so far.
    pub recovery_messages: u64,
}

/// A simulated storage cluster.
///
/// ```
/// use kdchoice_storage::{PlacementPolicy, StorageCluster};
/// use kdchoice_prng::Xoshiro256PlusPlus;
///
/// let mut rng = Xoshiro256PlusPlus::from_u64(1);
/// let mut cluster = StorageCluster::new(50, 4, PlacementPolicy::KdChoice { d: 8 });
/// let file = cluster.create_file(&mut rng);
/// assert_eq!(cluster.read_file(file), 5); // k + 1 messages
/// let stats = cluster.stats();
/// assert_eq!(stats.total_chunks, 4);
/// ```
#[derive(Debug)]
pub struct StorageCluster {
    servers: Vec<Server>,
    /// Per-server chunk counts in the shared bin-load substrate (one bin
    /// per server, dead servers pinned at zero) — the same
    /// [`kdchoice_core::BinStore`] surface the core process, the
    /// scheduler, and the concurrent placement service track load
    /// through. `Server::chunks` keeps the chunk *identities* for
    /// recovery enumeration; the *counts* probed by placement live here.
    loads: LoadVector,
    /// Indices of alive servers (for uniform sampling among the living).
    alive: Vec<usize>,
    /// `alive_pos[s]` = position of server `s` in `alive`, or `usize::MAX`.
    alive_pos: Vec<usize>,
    /// `files[f][c]` = server holding chunk `c` of file `f`.
    files: Vec<Vec<usize>>,
    chunks_per_file: usize,
    policy: PlacementPolicy,
    placement_messages: u64,
    read_messages: u64,
    recovered_chunks: u64,
    recovery_messages: u64,
}

impl StorageCluster {
    /// Creates a cluster of `servers` empty alive servers storing files of
    /// `chunks_per_file` chunks under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`, `chunks_per_file == 0`, or the policy's
    /// probe count is smaller than `chunks_per_file`.
    pub fn new(servers: usize, chunks_per_file: usize, policy: PlacementPolicy) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(chunks_per_file > 0, "need at least one chunk per file");
        if let PlacementPolicy::KdChoice { d } = policy {
            assert!(
                d >= chunks_per_file,
                "(k,d)-choice placement needs d >= k (k={chunks_per_file}, d={d})"
            );
        }
        Self {
            servers: (0..servers)
                .map(|_| Server {
                    chunks: Vec::new(),
                    alive: true,
                    capacity: 1.0,
                })
                .collect(),
            loads: LoadVector::new(servers),
            alive: (0..servers).collect(),
            alive_pos: (0..servers).collect(),
            files: Vec::new(),
            chunks_per_file,
            policy,
            placement_messages: 0,
            read_messages: 0,
            recovered_chunks: 0,
            recovery_messages: 0,
        }
    }

    /// Assigns heterogeneous relative capacities. Placement then compares
    /// *effective* loads `chunks/capacity`, so a capacity-2 server absorbs
    /// about twice the chunks of a capacity-1 server.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the server count or any
    /// capacity is not finite and positive.
    #[must_use]
    pub fn with_capacities(mut self, capacities: &[f64]) -> Self {
        assert_eq!(
            capacities.len(),
            self.servers.len(),
            "one capacity per server"
        );
        assert!(
            capacities.iter().all(|c| c.is_finite() && *c > 0.0),
            "capacities must be finite and positive"
        );
        for (s, &c) in self.servers.iter_mut().zip(capacities) {
            s.capacity = c;
        }
        self
    }

    /// Chunks per file, `k`.
    pub fn chunks_per_file(&self) -> usize {
        self.chunks_per_file
    }

    /// The placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// The number of alive servers.
    pub fn alive_servers(&self) -> usize {
        self.alive.len()
    }

    /// The number of files ever created.
    pub fn files(&self) -> usize {
        self.files.len()
    }

    /// Whether `server` is alive.
    pub fn is_alive(&self, server: usize) -> bool {
        self.servers.get(server).is_some_and(|s| s.alive)
    }

    /// The chunk count of an alive server (its "load").
    fn load(&self, server: usize) -> u32 {
        self.loads.load(server)
    }

    /// Places `count` chunks on servers chosen by the policy among the
    /// alive servers; returns `(destinations, probe_messages)`.
    fn place<R: RngCore + ?Sized>(&self, count: usize, rng: &mut R) -> (Vec<usize>, u64) {
        choose_destinations(
            self.policy,
            &self.alive,
            |s| self.loads.load(s),
            |s| self.servers[s].capacity,
            count,
            rng,
        )
    }

    /// Creates a new file of `k` chunks, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if no servers are alive.
    pub fn create_file<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> u32 {
        let file = self.files.len() as u32;
        let (dest, probes) = self.place(self.chunks_per_file, rng);
        self.placement_messages += probes;
        for (c, &server) in dest.iter().enumerate() {
            self.servers[server].chunks.push((file, c as u16));
            self.loads.add_ball(server);
        }
        self.files.push(dest);
        file
    }

    /// Reads a file (all `k` chunks) and returns the message cost of the
    /// operation per §1.3: `k + 1` for directory-based placements, `2k` for
    /// per-chunk two-choice (each chunk has two candidate locations to
    /// address).
    ///
    /// # Panics
    ///
    /// Panics if the file does not exist.
    pub fn read_file(&mut self, file: u32) -> u64 {
        assert!((file as usize) < self.files.len(), "unknown file {file}");
        let k = self.chunks_per_file as u64;
        let cost = match self.policy {
            PlacementPolicy::PerChunkTwoChoice => 2 * k,
            PlacementPolicy::KdChoice { .. } | PlacementPolicy::Random => k + 1,
        };
        self.read_messages += cost;
        cost
    }

    /// Kills server `server`; its chunks are re-replicated onto alive
    /// servers via the placement policy. Returns the number of chunks
    /// moved.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownServer`] for an out-of-range id,
    /// [`ClusterError::AlreadyDead`] if the server is already dead, and
    /// [`ClusterError::NoAliveServers`] if it holds chunks and no other
    /// server is alive to receive them. On error the cluster is unchanged,
    /// so fault plans with overlapping targets degrade gracefully.
    pub fn fail_server<R: RngCore + ?Sized>(
        &mut self,
        server: usize,
        rng: &mut R,
    ) -> Result<u64, ClusterError> {
        if server >= self.servers.len() {
            return Err(ClusterError::UnknownServer { server });
        }
        if !self.servers[server].alive {
            return Err(ClusterError::AlreadyDead { server });
        }
        if !self.servers[server].chunks.is_empty() && self.alive.len() == 1 {
            return Err(ClusterError::NoAliveServers);
        }
        // Remove from the alive set (swap-remove + position fixup).
        let pos = self.alive_pos[server];
        self.alive.swap_remove(pos);
        if pos < self.alive.len() {
            self.alive_pos[self.alive[pos]] = pos;
        }
        self.alive_pos[server] = usize::MAX;
        self.servers[server].alive = false;
        let lost = std::mem::take(&mut self.servers[server].chunks);
        // The dead server's balls leave the substrate before re-placement
        // so probed loads never count lost chunks.
        for _ in 0..lost.len() {
            self.loads.remove_ball(server);
        }
        // Re-replicate chunk by chunk (a real system copies from surviving
        // replicas; here the chunk is reborn on a policy-chosen server).
        for (file, chunk) in &lost {
            let (dest, probes) = self.place(1, rng);
            self.recovery_messages += probes.max(1);
            let d = dest[0];
            self.servers[d].chunks.push((*file, *chunk));
            self.loads.add_ball(d);
            self.files[*file as usize][*chunk as usize] = d;
        }
        self.recovered_chunks += lost.len() as u64;
        Ok(lost.len() as u64)
    }

    /// Kills a uniformly random alive server. Returns `(server, moved)`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoAliveServers`] when no server is alive to kill
    /// (or the victim would strand its chunks); see [`Self::fail_server`].
    pub fn fail_random_server<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Result<(usize, u64), ClusterError> {
        if self.alive.is_empty() {
            return Err(ClusterError::NoAliveServers);
        }
        let server = self.alive[UniformBin::new(self.alive.len()).sample(rng)];
        let moved = self.fail_server(server, rng)?;
        Ok((server, moved))
    }

    /// The loads (chunk counts) of all alive servers.
    pub fn alive_loads(&self) -> Vec<u32> {
        self.alive.iter().map(|&s| self.load(s)).collect()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> StorageStats {
        let loads = self.alive_loads();
        let total: u64 = loads.iter().map(|&l| u64::from(l)).sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        let mean = if loads.is_empty() {
            0.0
        } else {
            total as f64 / loads.len() as f64
        };
        StorageStats {
            alive_servers: self.alive.len(),
            total_chunks: total,
            max_load: max,
            mean_load: mean,
            imbalance: if mean > 0.0 {
                f64::from(max) / mean
            } else {
                1.0
            },
            placement_messages: self.placement_messages,
            read_messages: self.read_messages,
            recovered_chunks: self.recovered_chunks,
            recovery_messages: self.recovery_messages,
        }
    }

    /// Verifies internal consistency: every file chunk is on the server the
    /// directory says, alive bookkeeping matches, chunk counts add up, and
    /// the bin-load substrate agrees with the chunk lists.
    pub fn check_invariants(&self) -> bool {
        let mut counted = 0u64;
        for (s, server) in self.servers.iter().enumerate() {
            if server.alive != (self.alive_pos[s] != usize::MAX) {
                return false;
            }
            if server.alive && self.alive[self.alive_pos[s]] != s {
                return false;
            }
            for &(f, c) in &server.chunks {
                if self.files[f as usize][c as usize] != s {
                    return false;
                }
            }
            if self.loads.load(s) as usize != server.chunks.len() {
                return false;
            }
            counted += server.chunks.len() as u64;
        }
        self.loads.check_invariants()
            && self.loads.total_balls() == counted
            && counted == (self.files.len() * self.chunks_per_file) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    #[test]
    fn construction_validates() {
        let c = StorageCluster::new(10, 3, PlacementPolicy::KdChoice { d: 5 });
        assert_eq!(c.alive_servers(), 10);
        assert_eq!(c.chunks_per_file(), 3);
        assert_eq!(c.files(), 0);
        assert!(c.check_invariants());
    }

    #[test]
    #[should_panic(expected = "d >= k")]
    fn kd_policy_needs_enough_probes() {
        let _ = StorageCluster::new(10, 4, PlacementPolicy::KdChoice { d: 3 });
    }

    #[test]
    fn create_places_k_chunks() {
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        for policy in [
            PlacementPolicy::KdChoice { d: 6 },
            PlacementPolicy::PerChunkTwoChoice,
            PlacementPolicy::Random,
        ] {
            let mut c = StorageCluster::new(20, 3, policy);
            for _ in 0..50 {
                c.create_file(&mut rng);
            }
            let st = c.stats();
            assert_eq!(st.total_chunks, 150, "{policy:?}");
            assert!(c.check_invariants(), "{policy:?}");
        }
    }

    #[test]
    fn placement_message_accounting() {
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        let mut kd = StorageCluster::new(20, 3, PlacementPolicy::KdChoice { d: 4 });
        kd.create_file(&mut rng);
        assert_eq!(kd.stats().placement_messages, 4);

        let mut two = StorageCluster::new(20, 3, PlacementPolicy::PerChunkTwoChoice);
        two.create_file(&mut rng);
        assert_eq!(two.stats().placement_messages, 6);

        let mut rnd = StorageCluster::new(20, 3, PlacementPolicy::Random);
        rnd.create_file(&mut rng);
        assert_eq!(rnd.stats().placement_messages, 0);
    }

    #[test]
    fn read_costs_match_section_1_3() {
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        let mut kd = StorageCluster::new(20, 4, PlacementPolicy::KdChoice { d: 5 });
        let f = kd.create_file(&mut rng);
        assert_eq!(kd.read_file(f), 5); // k + 1
        let mut two = StorageCluster::new(20, 4, PlacementPolicy::PerChunkTwoChoice);
        let f = two.create_file(&mut rng);
        assert_eq!(two.read_file(f), 8); // 2k
    }

    #[test]
    #[should_panic(expected = "unknown file")]
    fn read_unknown_file_panics() {
        let mut c = StorageCluster::new(5, 2, PlacementPolicy::Random);
        let _ = c.read_file(7);
    }

    #[test]
    fn kd_placement_respects_multiplicity_and_prefers_cold_servers() {
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        let mut c = StorageCluster::new(4, 2, PlacementPolicy::KdChoice { d: 8 });
        // Preload server 0 heavily by creating files then checking spread.
        for _ in 0..40 {
            c.create_file(&mut rng);
        }
        let loads = c.alive_loads();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // 80 chunks over 4 servers with d=8 probing: very tight balance.
        assert!(max - min <= 3, "loads {loads:?}");
    }

    #[test]
    fn failure_recovery_moves_all_chunks() {
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        let mut c = StorageCluster::new(10, 3, PlacementPolicy::KdChoice { d: 4 });
        for _ in 0..30 {
            c.create_file(&mut rng);
        }
        let before = c.stats().total_chunks;
        let (server, moved) = c.fail_random_server(&mut rng).unwrap();
        assert!(!c.servers[server].alive);
        assert_eq!(c.alive_servers(), 9);
        let after = c.stats();
        assert_eq!(after.total_chunks, before, "chunks must be conserved");
        assert_eq!(after.recovered_chunks, moved);
        assert!(c.check_invariants());
        // Directory points only at alive servers.
        for f in &c.files {
            for &s in f {
                assert!(c.servers[s].alive, "directory points at dead server");
            }
        }
    }

    #[test]
    fn fault_errors_are_values_not_panics() {
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        let mut c = StorageCluster::new(3, 1, PlacementPolicy::Random);

        // Double failure: the second call reports AlreadyDead, changes
        // nothing, and the cluster stays usable.
        assert!(c.fail_server(0, &mut rng).is_ok());
        assert_eq!(
            c.fail_server(0, &mut rng),
            Err(ClusterError::AlreadyDead { server: 0 })
        );
        assert_eq!(c.alive_servers(), 2);
        assert!(c.check_invariants());

        // Out-of-range target.
        assert_eq!(
            c.fail_server(17, &mut rng),
            Err(ClusterError::UnknownServer { server: 17 })
        );

        // Draining the alive set: failing the last chunkless server is
        // fine, then sampling a victim from an empty set reports
        // NoAliveServers.
        assert!(c.fail_server(1, &mut rng).is_ok());
        assert!(c.fail_server(2, &mut rng).is_ok());
        assert_eq!(
            c.fail_random_server(&mut rng),
            Err(ClusterError::NoAliveServers)
        );
    }

    #[test]
    fn failing_the_last_loaded_server_is_an_error_not_a_panic() {
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let mut c = StorageCluster::new(2, 1, PlacementPolicy::Random);
        c.create_file(&mut rng);
        c.create_file(&mut rng);
        assert!(c.fail_server(0, &mut rng).is_ok());
        // Server 1 now holds every chunk and is the only one alive.
        assert_eq!(
            c.fail_server(1, &mut rng),
            Err(ClusterError::NoAliveServers)
        );
        // The refused failure left the cluster intact.
        assert_eq!(c.alive_servers(), 1);
        assert_eq!(c.stats().total_chunks, 2);
        assert!(c.check_invariants());
    }

    #[test]
    fn cascading_failures_keep_invariants() {
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        let mut c = StorageCluster::new(16, 2, PlacementPolicy::KdChoice { d: 4 });
        for _ in 0..64 {
            c.create_file(&mut rng);
        }
        for _ in 0..12 {
            c.fail_random_server(&mut rng).unwrap();
            assert!(c.check_invariants());
        }
        assert_eq!(c.alive_servers(), 4);
        assert_eq!(c.stats().total_chunks, 128);
    }

    #[test]
    fn heterogeneous_capacities_absorb_proportionally() {
        let mut rng = Xoshiro256PlusPlus::from_u64(20);
        // Half the servers have double capacity.
        let n = 40;
        let caps: Vec<f64> = (0..n).map(|i| if i < 20 { 2.0 } else { 1.0 }).collect();
        let mut c =
            StorageCluster::new(n, 2, PlacementPolicy::KdChoice { d: 8 }).with_capacities(&caps);
        for _ in 0..600 {
            c.create_file(&mut rng);
        }
        let loads = c.alive_loads();
        let big: u64 = loads[..20].iter().map(|&l| u64::from(l)).sum();
        let small: u64 = loads[20..].iter().map(|&l| u64::from(l)).sum();
        let ratio = big as f64 / small as f64;
        assert!(
            (1.5..=2.6).contains(&ratio),
            "capacity-2 servers should hold ~2x the chunks, ratio {ratio}"
        );
        assert!(c.check_invariants());
    }

    #[test]
    #[should_panic(expected = "one capacity per server")]
    fn capacities_length_checked() {
        let _ = StorageCluster::new(3, 1, PlacementPolicy::Random).with_capacities(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn capacities_value_checked() {
        let _ = StorageCluster::new(2, 1, PlacementPolicy::Random).with_capacities(&[1.0, 0.0]);
    }

    #[test]
    fn kd_beats_random_on_imbalance() {
        let mut rng_a = Xoshiro256PlusPlus::from_u64(8);
        let mut rng_b = Xoshiro256PlusPlus::from_u64(8);
        let mut kd = StorageCluster::new(100, 3, PlacementPolicy::KdChoice { d: 6 });
        let mut rnd = StorageCluster::new(100, 3, PlacementPolicy::Random);
        for _ in 0..300 {
            kd.create_file(&mut rng_a);
            rnd.create_file(&mut rng_b);
        }
        assert!(
            kd.stats().max_load < rnd.stats().max_load,
            "kd {} vs random {}",
            kd.stats().max_load,
            rnd.stats().max_load
        );
    }
}
