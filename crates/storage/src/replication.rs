//! Bounded-rate re-replication: the recovery queue that turns an
//! instantaneous healing storm into a budgeted, retrying background
//! process.
//!
//! When the master detects a dead server, every replica it held becomes a
//! [`Repair`] entry. Each tick the cluster drains at most
//! [`RecoveryConfig::budget_per_tick`] entries (attempts, not successes —
//! failed attempts consume budget too, so per-tick work is bounded). An
//! attempt can fail because the chosen destination is actually down
//! (stale heartbeat view), already saturated this tick
//! ([`RecoveryConfig::max_ingest_per_tick`]), or because the distinctness
//! constraints leave no eligible server; failures re-queue with
//! exponential backoff so the queue does not thrash against a degraded
//! cluster.

use std::collections::VecDeque;

/// Rate limits and retry policy of the re-replication pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Repair attempts per tick; `0` means unbounded (the legacy
    /// instantaneous-heal behavior).
    pub budget_per_tick: u32,
    /// Base of the exponential retry backoff in ticks: retry `a` waits
    /// `backoff_base << min(a - 1, 6)` ticks. `0` retries next tick.
    pub backoff_base: u32,
    /// Repairs one destination server accepts per tick; `0` = unbounded.
    /// A full destination rejects the copy, which re-queues with backoff
    /// — "backoff when placement repeatedly lands on overloaded servers".
    pub max_ingest_per_tick: u32,
}

impl RecoveryConfig {
    /// Unbounded instantaneous recovery (the legacy-equivalent mode).
    pub const fn unbounded() -> Self {
        Self {
            budget_per_tick: 0,
            backoff_base: 1,
            max_ingest_per_tick: 0,
        }
    }

    /// A budget of `budget_per_tick` repairs per tick with default
    /// backoff and no ingest cap.
    pub const fn budgeted(budget_per_tick: u32) -> Self {
        Self {
            budget_per_tick,
            backoff_base: 1,
            max_ingest_per_tick: 0,
        }
    }

    /// Whether the budget is unbounded.
    pub fn is_unbounded(&self) -> bool {
        self.budget_per_tick == 0
    }

    /// The backoff delay in ticks after `attempts` failed attempts.
    pub fn backoff(&self, attempts: u32) -> u64 {
        u64::from(self.backoff_base) << attempts.saturating_sub(1).min(6)
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// One lost replica awaiting re-replication: chunk id, replica slot, and
/// retry state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repair {
    /// The chunk missing a replica.
    pub chunk: u32,
    /// Which of the chunk's `k` replica slots is being rebuilt.
    pub slot: u16,
    /// Failed attempts so far.
    pub attempts: u32,
    /// Earliest tick the next attempt may run (backoff).
    pub not_before: u64,
}

/// FIFO queue of pending repairs. Entries deferred by backoff or budget
/// keep their relative order.
#[derive(Debug, Clone, Default)]
pub struct RecoveryQueue {
    queue: VecDeque<Repair>,
    peak_len: usize,
}

impl RecoveryQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a fresh repair for `(chunk, slot)`, runnable immediately.
    pub fn push(&mut self, chunk: u32, slot: u16) {
        self.queue.push_back(Repair {
            chunk,
            slot,
            attempts: 0,
            not_before: 0,
        });
        self.peak_len = self.peak_len.max(self.queue.len());
    }

    /// Pending repairs.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no repairs are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The largest backlog ever observed.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drains up to `config.budget_per_tick` runnable entries at `now`,
    /// invoking `attempt` on each; entries whose backoff has not expired
    /// (and entries beyond the budget) are kept in order. `attempt`
    /// returns `Ok(())` on success or `Err(delay_attempts)` — on error
    /// the entry re-queues with incremented attempts and its backoff
    /// deadline. Returns the number of attempts made.
    pub fn drain<F>(&mut self, now: u64, config: RecoveryConfig, mut attempt: F) -> u32
    where
        F: FnMut(Repair) -> Result<(), ()>,
    {
        let mut kept: VecDeque<Repair> = VecDeque::with_capacity(self.queue.len());
        let mut attempts_made = 0u32;
        while let Some(entry) = self.queue.pop_front() {
            let within_budget = config.is_unbounded() || attempts_made < config.budget_per_tick;
            if !within_budget || entry.not_before > now {
                kept.push_back(entry);
                continue;
            }
            attempts_made += 1;
            match attempt(entry) {
                Ok(()) => {}
                Err(()) => {
                    let attempts = entry.attempts + 1;
                    kept.push_back(Repair {
                        attempts,
                        not_before: now + config.backoff(attempts),
                        ..entry
                    });
                }
            }
        }
        self.queue = kept;
        self.peak_len = self.peak_len.max(self.queue.len());
        attempts_made
    }

    /// Removes every pending repair for chunk `chunk` at slot `slot`
    /// (used when a recovering server brings the replica back itself).
    /// Returns how many entries were removed.
    pub fn cancel(&mut self, chunk: u32, slot: u16) -> usize {
        let before = self.queue.len();
        self.queue.retain(|r| !(r.chunk == chunk && r.slot == slot));
        before - self.queue.len()
    }

    /// Iterates the pending repairs (for invariant checking).
    pub fn iter(&self) -> impl Iterator<Item = &Repair> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_bounds_attempts_per_tick() {
        let mut q = RecoveryQueue::new();
        for c in 0..10 {
            q.push(c, 0);
        }
        let cfg = RecoveryConfig::budgeted(3);
        let mut seen = Vec::new();
        let n = q.drain(1, cfg, |r| {
            seen.push(r.chunk);
            Ok(())
        });
        assert_eq!(n, 3);
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(q.len(), 7, "unprocessed entries stay queued");
    }

    #[test]
    fn unbounded_budget_drains_everything_fifo() {
        let mut q = RecoveryQueue::new();
        for c in 0..5 {
            q.push(c, 1);
        }
        let mut seen = Vec::new();
        q.drain(1, RecoveryConfig::unbounded(), |r| {
            seen.push(r.chunk);
            Ok(())
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 5);
    }

    #[test]
    fn failures_requeue_with_exponential_backoff() {
        let mut q = RecoveryQueue::new();
        q.push(7, 0);
        let cfg = RecoveryConfig {
            budget_per_tick: 8,
            backoff_base: 2,
            max_ingest_per_tick: 0,
        };
        // Fails at tick 1: requeued with attempts=1, not_before = 1 + 2.
        assert_eq!(q.drain(1, cfg, |_| Err(())), 1);
        assert_eq!(q.len(), 1);
        let e = *q.iter().next().unwrap();
        assert_eq!(e.attempts, 1);
        assert_eq!(e.not_before, 3);
        // Too early at tick 2: no attempt.
        assert_eq!(q.drain(2, cfg, |_| Err(())), 0);
        // Fails again at 3: backoff doubles (2 << 1 = 4).
        assert_eq!(q.drain(3, cfg, |_| Err(())), 1);
        assert_eq!(q.iter().next().unwrap().not_before, 7);
        // Succeeds at 7.
        assert_eq!(q.drain(7, cfg, |_| Ok(())), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn backoff_is_capped() {
        let cfg = RecoveryConfig {
            budget_per_tick: 1,
            backoff_base: 1,
            max_ingest_per_tick: 0,
        };
        assert_eq!(cfg.backoff(1), 1);
        assert_eq!(cfg.backoff(4), 8);
        assert_eq!(cfg.backoff(100), 64, "backoff saturates at base << 6");
    }

    #[test]
    fn cancel_removes_matching_entries_only() {
        let mut q = RecoveryQueue::new();
        q.push(1, 0);
        q.push(1, 1);
        q.push(2, 0);
        assert_eq!(q.cancel(1, 1), 1);
        assert_eq!(q.len(), 2);
        let chunks: Vec<(u32, u16)> = q.iter().map(|r| (r.chunk, r.slot)).collect();
        assert_eq!(chunks, vec![(1, 0), (2, 0)]);
    }
}
