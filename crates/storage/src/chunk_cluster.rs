//! The fault-injected replicated chunk cluster: a virtual-clock
//! master/chunkserver simulation where each chunk keeps `k` replicas
//! placed by (k,d)-choice, servers report load via heartbeats, a
//! [`FaultPlan`] crashes and revives nodes, and recovery is a
//! bounded-rate background queue instead of an instantaneous heal.
//!
//! # Model
//!
//! - **Placement** probes the master's view: the *alive* list (servers
//!   not yet declared dead) and — when heartbeat period > 0 — the last
//!   *reported* loads, which lag the truth. A probed destination can
//!   therefore be crashed-but-undetected; writes to it fail and the
//!   replica is rebuilt through the recovery queue.
//! - **Crashes** are silent: a crashed server stops heartbeating but the
//!   master only declares it dead after the heartbeat timeout
//!   ([`HeartbeatConfig`]), which is the *detection latency* observable.
//!   Its replicas are unreadable while it is down; if it recovers before
//!   detection they come back (a network blip), otherwise they are
//!   re-replicated and the server rejoins empty.
//! - **Recovery** drains at most a budget of repair attempts per tick
//!   ([`RecoveryConfig`]), retrying with exponential backoff when the
//!   chosen destination is dead, saturated, or constrained away.
//!
//! Configured with zero heartbeat lag ([`HeartbeatConfig::synchronous`]),
//! an unbounded budget ([`RecoveryConfig::unbounded`]) and the
//! [`ReplicaDiscipline::Multiplicity`] legacy placement rule, the whole
//! pipeline collapses to the synchronous [`crate::StorageCluster`]
//! semantics and reproduces its RNG stream bit-identically (locked by
//! the `legacy_equivalence` integration test).

use std::collections::VecDeque;

use kdchoice_prng::sample::UniformBin;
use rand::RngCore;

use crate::cluster::{ClusterError, StorageStats};
use crate::fault::{FaultEvent, FaultInjector, FaultPlan};
use crate::heartbeat::{HeartbeatConfig, HeartbeatTable};
use crate::placement::{choose_constrained, choose_destinations, PlacementPolicy};
use crate::replication::{RecoveryConfig, RecoveryQueue, Repair};

/// How strictly a chunk's `k` replicas must spread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaDiscipline {
    /// The legacy §1.3 multiplicity rule: one server may hold several
    /// replicas of a chunk (needed for bit-identical legacy equivalence).
    Multiplicity,
    /// Replicas of a chunk land on distinct servers.
    DistinctServers,
    /// Replicas of a chunk land on distinct racks (hence distinct
    /// servers) — probe sets correlated by rack, the hypergraph model.
    DistinctRacks,
}

impl ReplicaDiscipline {
    /// Display name (used by report rows).
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaDiscipline::Multiplicity => "multiplicity",
            ReplicaDiscipline::DistinctServers => "distinct",
            ReplicaDiscipline::DistinctRacks => "rack",
        }
    }
}

/// Static configuration of a [`ChunkCluster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Initial number of chunkservers.
    pub servers: usize,
    /// Number of racks; server `s` lives in rack `s % racks`.
    pub racks: usize,
    /// Replicas per chunk, the paper's `k`.
    pub replicas: usize,
    /// How replica destinations are probed.
    pub policy: PlacementPolicy,
    /// Replica spread constraint.
    pub discipline: ReplicaDiscipline,
    /// Heartbeat period and failure-detection timeout.
    pub heartbeat: HeartbeatConfig,
    /// Re-replication rate limits and backoff.
    pub recovery: RecoveryConfig,
}

impl ClusterConfig {
    /// A distinct-server cluster with synchronous heartbeats and
    /// unbounded recovery; tune fields from there.
    pub fn new(servers: usize, replicas: usize, policy: PlacementPolicy) -> Self {
        Self {
            servers,
            racks: 1,
            replicas,
            policy,
            discipline: ReplicaDiscipline::DistinctServers,
            heartbeat: HeartbeatConfig::synchronous(),
            recovery: RecoveryConfig::unbounded(),
        }
    }

    /// The configuration under which [`ChunkCluster`] is bit-identical to
    /// the legacy [`crate::StorageCluster`]: multiplicity placement, zero
    /// heartbeat lag, instant detection, unbounded recovery.
    pub fn legacy_compat(servers: usize, replicas: usize, policy: PlacementPolicy) -> Self {
        Self {
            discipline: ReplicaDiscipline::Multiplicity,
            ..Self::new(servers, replicas, policy)
        }
    }
}

/// Where one replica slot of a chunk currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Replica {
    /// Stored on this server (which may be crashed-but-undetected, in
    /// which case the replica is temporarily unreadable).
    On(usize),
    /// Lost; exactly one matching [`Repair`] entry is queued.
    Repairing,
}

/// One chunk: its `k` replica slots and how many are on up servers.
#[derive(Debug, Clone)]
struct ChunkState {
    replicas: Vec<Replica>,
    live: u32,
}

/// Ground-truth state of one chunkserver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Serving and heartbeating.
    Up,
    /// Silently down; the master has not noticed yet.
    Crashed,
    /// Declared dead by the master; replicas handed to recovery.
    Dead,
}

#[derive(Debug, Clone)]
struct Node {
    rack: usize,
    capacity: f64,
    status: Status,
    crashed_at: u64,
    /// Replica slots held, for recovery enumeration: `(chunk, slot)`.
    held: Vec<(u32, u16)>,
}

/// Robustness counters accumulated over a run; snapshot via
/// [`ChunkCluster::degradation`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DegradationReport {
    /// Virtual ticks elapsed.
    pub ticks: u64,
    /// Servers crashed (including rack-outage members).
    pub crashes: u64,
    /// Crashes the master detected (declared dead).
    pub detections: u64,
    /// Downed servers brought back by the fault plan.
    pub rejoins: u64,
    /// Brand-new servers joined.
    pub joins: u64,
    /// Mean ticks from crash to the master declaring the server dead.
    pub detection_latency_mean: f64,
    /// Worst-case detection latency in ticks.
    pub detection_latency_max: u64,
    /// Largest number of simultaneously under-replicated chunks.
    pub peak_under_replicated: u64,
    /// Sum over ticks of the under-replicated chunk count (chunk-ticks).
    pub under_replicated_area: u64,
    /// Ticks from the first under-replication to the last return to full
    /// replication (to the final tick if never healed).
    pub ticks_to_heal: u64,
    /// Whether every chunk ended at full replication.
    pub healed: bool,
    /// Times some chunk lost its last up replica (all `k` replicas down
    /// simultaneously — a durability loss unless the server recovers).
    pub durability_losses: u64,
    /// Sum over ticks of chunks with zero up replicas (unavailability
    /// chunk-ticks).
    pub unavailable_area: u64,
    /// Repair attempts (successes + failures; budget counts these).
    pub repair_attempts: u64,
    /// Attempts that were retries of earlier failures.
    pub repair_retries: u64,
    /// Attempts refused because the chosen destination was down.
    pub failed_dead_dest: u64,
    /// Attempts refused because the destination hit its per-tick ingest
    /// cap (overloaded; re-queued with backoff).
    pub failed_overloaded: u64,
    /// Attempts where constraints left no eligible destination.
    pub failed_no_eligible: u64,
    /// Replica writes at creation that failed (stale probe picked a
    /// crashed server).
    pub failed_writes: u64,
    /// Reads served with fewer than `k` up replicas.
    pub degraded_reads: u64,
    /// Reads that found zero up replicas.
    pub failed_reads: u64,
    /// Fault-plan events that were impossible when they fired (e.g.
    /// crashing an already-dead server) and were skipped.
    pub plan_errors: u64,
    /// Largest recovery-queue backlog observed.
    pub peak_recovery_queue: u64,
    /// Chunks still under-replicated at the end of the run.
    pub final_under_replicated: u64,
}

/// The fault-injected replicated chunk cluster (see the module docs).
#[derive(Debug)]
pub struct ChunkCluster {
    config: ClusterConfig,
    now: u64,
    servers: Vec<Node>,
    /// True replica counts per server (what heartbeats report).
    loads: Vec<u32>,
    /// Master's view: servers not declared dead. Placement samples this.
    alive: Vec<usize>,
    alive_pos: Vec<usize>,
    /// Ground truth: servers actually up. Fault injection samples this.
    up: Vec<usize>,
    up_pos: Vec<usize>,
    chunks: Vec<ChunkState>,
    heartbeats: HeartbeatTable,
    injector: FaultInjector,
    queue: RecoveryQueue,
    /// Downed servers in crash order (for [`FaultEvent::RecoverOldest`]).
    down_fifo: VecDeque<usize>,
    crashed_undetected: usize,
    under_replicated: usize,
    unavailable: usize,
    // Legacy-compatible message/recovery accounting.
    placement_messages: u64,
    read_messages: u64,
    recovered_chunks: u64,
    recovery_messages: u64,
    // Degradation accounting.
    crashes: u64,
    detections: u64,
    rejoins: u64,
    joins: u64,
    detection_latency_sum: u64,
    detection_latency_max: u64,
    peak_under_replicated: usize,
    under_replicated_area: u64,
    first_under_tick: Option<u64>,
    last_heal_tick: u64,
    durability_losses: u64,
    unavailable_area: u64,
    repair_attempts: u64,
    repair_retries: u64,
    failed_dead_dest: u64,
    failed_overloaded: u64,
    failed_no_eligible: u64,
    failed_writes: u64,
    degraded_reads: u64,
    failed_reads: u64,
    plan_errors: u64,
    /// `(tick, under_replicated)` samples, every `sample_every` ticks.
    series: Vec<(u64, u32)>,
    sample_every: u32,
}

impl ChunkCluster {
    /// Builds a cluster of `config.servers` empty up servers executing
    /// `plan` on the virtual clock.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`, `replicas == 0`, `racks == 0`, or a
    /// `KdChoice` policy has `d < replicas`.
    pub fn new(config: ClusterConfig, plan: &FaultPlan) -> Self {
        assert!(config.servers > 0, "need at least one server");
        assert!(config.replicas > 0, "need at least one replica per chunk");
        assert!(config.racks > 0, "need at least one rack");
        if let PlacementPolicy::KdChoice { d } = config.policy {
            assert!(
                d >= config.replicas,
                "(k,d)-choice placement needs d >= k (k={}, d={d})",
                config.replicas
            );
        }
        let n = config.servers;
        Self {
            config,
            now: 0,
            servers: (0..n)
                .map(|s| Node {
                    rack: s % config.racks,
                    capacity: 1.0,
                    status: Status::Up,
                    crashed_at: 0,
                    held: Vec::new(),
                })
                .collect(),
            loads: vec![0; n],
            alive: (0..n).collect(),
            alive_pos: (0..n).collect(),
            up: (0..n).collect(),
            up_pos: (0..n).collect(),
            chunks: Vec::new(),
            heartbeats: HeartbeatTable::new(n),
            injector: FaultInjector::new(plan),
            queue: RecoveryQueue::new(),
            down_fifo: VecDeque::new(),
            crashed_undetected: 0,
            under_replicated: 0,
            unavailable: 0,
            placement_messages: 0,
            read_messages: 0,
            recovered_chunks: 0,
            recovery_messages: 0,
            crashes: 0,
            detections: 0,
            rejoins: 0,
            joins: 0,
            detection_latency_sum: 0,
            detection_latency_max: 0,
            peak_under_replicated: 0,
            under_replicated_area: 0,
            first_under_tick: None,
            last_heal_tick: 0,
            durability_losses: 0,
            unavailable_area: 0,
            repair_attempts: 0,
            repair_retries: 0,
            failed_dead_dest: 0,
            failed_overloaded: 0,
            failed_no_eligible: 0,
            failed_writes: 0,
            degraded_reads: 0,
            failed_reads: 0,
            plan_errors: 0,
            series: Vec::new(),
            sample_every: 1,
        }
    }

    /// Assigns heterogeneous relative capacities to the initial servers.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the server count or any
    /// capacity is not finite and positive.
    #[must_use]
    pub fn with_capacities(mut self, capacities: &[f64]) -> Self {
        assert_eq!(
            capacities.len(),
            self.servers.len(),
            "one capacity per server"
        );
        assert!(
            capacities.iter().all(|c| c.is_finite() && *c > 0.0),
            "capacities must be finite and positive"
        );
        for (node, &c) in self.servers.iter_mut().zip(capacities) {
            node.capacity = c;
        }
        self
    }

    /// Sets how often the under-replication time series is sampled
    /// (`0` disables the series).
    #[must_use]
    pub fn with_sample_every(mut self, sample_every: u32) -> Self {
        self.sample_every = sample_every;
        self
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Servers the master considers alive.
    pub fn alive_servers(&self) -> usize {
        self.alive.len()
    }

    /// Servers actually up.
    pub fn up_servers(&self) -> usize {
        self.up.len()
    }

    /// Total servers ever (including dead and joined).
    pub fn total_servers(&self) -> usize {
        self.servers.len()
    }

    /// Chunks created so far.
    pub fn chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Chunks currently missing at least one up replica.
    pub fn under_replicated(&self) -> usize {
        self.under_replicated
    }

    /// Chunks currently with zero up replicas.
    pub fn unavailable(&self) -> usize {
        self.unavailable
    }

    /// Pending repairs in the recovery queue.
    pub fn recovery_backlog(&self) -> usize {
        self.queue.len()
    }

    /// The `(tick, under_replicated)` time series (see
    /// [`Self::with_sample_every`]).
    pub fn series(&self) -> &[(u64, u32)] {
        &self.series
    }

    /// Whether all scheduled faults fired, every crash was detected or
    /// recovered, and the recovery queue is empty. Once quiescent (and
    /// with no further creates) the cluster state no longer changes.
    pub fn quiescent(&self) -> bool {
        !self.injector.pending() && self.crashed_undetected == 0 && self.queue.is_empty()
    }

    /// The load placement probes see for `server`: the true count in
    /// synchronous mode, the last heartbeat-reported count otherwise.
    fn probe_load(&self, server: usize) -> u32 {
        if self.config.heartbeat.period == 0 {
            self.loads[server]
        } else {
            self.heartbeats.snapshot(server)
        }
    }

    /// Creates one chunk and places its `k` replicas through the master's
    /// (possibly stale) view. Replica writes that land on a
    /// crashed-but-undetected server fail and are rebuilt via the
    /// recovery queue, as are slots the distinctness constraints could
    /// not immediately satisfy.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoAliveServers`] if the master's alive set is
    /// empty.
    pub fn create_chunk<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Result<u32, ClusterError> {
        if self.alive.is_empty() {
            return Err(ClusterError::NoAliveServers);
        }
        let k = self.config.replicas;
        let id = self.chunks.len() as u32;
        let (dest, probes) = self.place_replicas(k, id, rng);
        self.placement_messages += probes;
        let mut replicas = Vec::with_capacity(k);
        let mut live = 0u32;
        for slot in 0..k {
            if let Some(&s) = dest.get(slot) {
                if self.servers[s].status == Status::Up {
                    self.servers[s].held.push((id, slot as u16));
                    self.loads[s] += 1;
                    replicas.push(Replica::On(s));
                    live += 1;
                    continue;
                }
                self.failed_writes += 1;
            }
            replicas.push(Replica::Repairing);
            self.queue.push(id, slot as u16);
        }
        self.chunks.push(ChunkState { replicas, live });
        if live < k as u32 {
            self.under_replicated += 1;
            self.note_under_replication();
            if live == 0 {
                self.unavailable += 1;
                self.durability_losses += 1;
            }
        }
        Ok(id)
    }

    /// Chooses destinations for `count` replicas of chunk `chunk`
    /// according to the configured discipline.
    fn place_replicas<R: RngCore + ?Sized>(
        &self,
        count: usize,
        chunk: u32,
        rng: &mut R,
    ) -> (Vec<usize>, u64) {
        let load = |s: usize| self.probe_load(s);
        let capacity = |s: usize| self.servers[s].capacity;
        match self.config.discipline {
            ReplicaDiscipline::Multiplicity => {
                choose_destinations(self.config.policy, &self.alive, load, capacity, count, rng)
            }
            ReplicaDiscipline::DistinctServers | ReplicaDiscipline::DistinctRacks => {
                let rack_aware = self.config.discipline == ReplicaDiscipline::DistinctRacks;
                let holders: Vec<usize> = self
                    .chunks
                    .get(chunk as usize)
                    .map(|c| {
                        c.replicas
                            .iter()
                            .filter_map(|r| match r {
                                Replica::On(s) => Some(*s),
                                Replica::Repairing => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let racks_used: Vec<usize> = if rack_aware {
                    holders.iter().map(|&s| self.servers[s].rack).collect()
                } else {
                    Vec::new()
                };
                choose_constrained(
                    self.config.policy,
                    &self.alive,
                    load,
                    capacity,
                    |s| self.servers[s].rack,
                    rack_aware,
                    |s| holders.contains(&s),
                    &racks_used,
                    count,
                    rng,
                )
            }
        }
    }

    /// Reads a chunk and returns the §1.3 message cost (`k + 1` for
    /// directory placements, `2k` for per-chunk two-choice). Reads
    /// against under-replicated or unavailable chunks are counted in the
    /// degradation report.
    ///
    /// # Panics
    ///
    /// Panics if the chunk does not exist.
    pub fn read_chunk(&mut self, chunk: u32) -> u64 {
        let state = &self.chunks[chunk as usize];
        let k = self.config.replicas as u64;
        let cost = match self.config.policy {
            PlacementPolicy::PerChunkTwoChoice => 2 * k,
            PlacementPolicy::KdChoice { .. } | PlacementPolicy::Random => k + 1,
        };
        self.read_messages += cost;
        if state.live == 0 {
            self.failed_reads += 1;
        } else if u64::from(state.live) < k {
            self.degraded_reads += 1;
        }
        cost
    }

    /// Advances the virtual clock one tick: fire scheduled faults, take
    /// heartbeats, detect dead servers, drain the recovery budget, and
    /// sample metrics — in that order.
    pub fn tick<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        self.now += 1;
        let now = self.now;

        // 1. Fault injection.
        let due: Vec<(u64, FaultEvent)> = self.injector.take_due(now).to_vec();
        for (_, event) in due {
            self.apply_event(event, rng);
        }

        // 2. Heartbeats: up servers report their true load periodically.
        let period = self.config.heartbeat.period;
        if period > 0 && now.is_multiple_of(u64::from(period)) {
            for i in 0..self.up.len() {
                let s = self.up[i];
                self.heartbeats.report(s, self.loads[s], now);
            }
        }

        // 3. Detection: silent servers past the timeout are declared dead.
        if self.crashed_undetected > 0 {
            for s in 0..self.servers.len() {
                if self.servers[s].status == Status::Crashed
                    && self.heartbeats.overdue(s, now, self.config.heartbeat)
                {
                    self.detect_dead(s);
                }
            }
        }

        // 4. Bounded-rate recovery.
        self.drain_recovery(rng);

        // 5. Metrics.
        self.under_replicated_area += self.under_replicated as u64;
        self.unavailable_area += self.unavailable as u64;
        if self.sample_every > 0 && now.is_multiple_of(u64::from(self.sample_every)) {
            self.series.push((now, self.under_replicated as u32));
        }
    }

    /// Applies one fault event; impossible events count as plan errors.
    fn apply_event<R: RngCore + ?Sized>(&mut self, event: FaultEvent, rng: &mut R) {
        let result: Result<(), ClusterError> = match event {
            FaultEvent::Crash { server } => self.crash(server),
            FaultEvent::CrashRandom => {
                if self.up.is_empty() {
                    Err(ClusterError::NoAliveServers)
                } else {
                    let victim = self.up[UniformBin::new(self.up.len()).sample(rng)];
                    self.crash(victim)
                }
            }
            FaultEvent::RackOutage { rack } => {
                if rack >= self.config.racks {
                    Err(ClusterError::UnknownServer { server: rack })
                } else {
                    for s in 0..self.servers.len() {
                        if self.servers[s].rack == rack && self.servers[s].status == Status::Up {
                            let _ = self.crash(s);
                        }
                    }
                    Ok(())
                }
            }
            FaultEvent::Recover { server } => self.recover(server),
            FaultEvent::RecoverOldest => match self.down_fifo.front().copied() {
                Some(server) => self.recover(server),
                None => Err(ClusterError::NoAliveServers),
            },
            FaultEvent::Join { capacity } => {
                self.join(capacity);
                Ok(())
            }
        };
        if result.is_err() {
            self.plan_errors += 1;
        }
    }

    /// Silently crashes `server`: heartbeats stop, replicas become
    /// unreadable, the master does not know yet.
    fn crash(&mut self, server: usize) -> Result<(), ClusterError> {
        if server >= self.servers.len() {
            return Err(ClusterError::UnknownServer { server });
        }
        if self.servers[server].status != Status::Up {
            return Err(ClusterError::AlreadyDead { server });
        }
        self.servers[server].status = Status::Crashed;
        self.servers[server].crashed_at = self.now;
        remove_member(&mut self.up, &mut self.up_pos, server);
        self.down_fifo.push_back(server);
        self.crashed_undetected += 1;
        self.crashes += 1;
        for i in 0..self.servers[server].held.len() {
            let (chunk, _) = self.servers[server].held[i];
            self.replica_lost(chunk as usize);
        }
        Ok(())
    }

    /// The master declares a silent server dead: removes it from the
    /// placement view and hands every replica it held to recovery.
    fn detect_dead(&mut self, server: usize) {
        debug_assert_eq!(self.servers[server].status, Status::Crashed);
        self.servers[server].status = Status::Dead;
        self.crashed_undetected -= 1;
        self.detections += 1;
        let latency = self.now - self.servers[server].crashed_at;
        self.detection_latency_sum += latency;
        self.detection_latency_max = self.detection_latency_max.max(latency);
        remove_member(&mut self.alive, &mut self.alive_pos, server);
        self.loads[server] = 0;
        let held = std::mem::take(&mut self.servers[server].held);
        for (chunk, slot) in held {
            debug_assert_eq!(
                self.chunks[chunk as usize].replicas[slot as usize],
                Replica::On(server)
            );
            self.chunks[chunk as usize].replicas[slot as usize] = Replica::Repairing;
            self.queue.push(chunk, slot);
        }
    }

    /// Brings a downed server back (see [`FaultEvent::Recover`]).
    fn recover(&mut self, server: usize) -> Result<(), ClusterError> {
        if server >= self.servers.len() {
            return Err(ClusterError::UnknownServer { server });
        }
        match self.servers[server].status {
            Status::Up => Err(ClusterError::NotDown { server }),
            Status::Crashed => {
                // A transient blip: back before detection, replicas intact.
                self.servers[server].status = Status::Up;
                self.crashed_undetected -= 1;
                push_member(&mut self.up, &mut self.up_pos, server);
                self.down_fifo.retain(|&s| s != server);
                self.heartbeats.report(server, self.loads[server], self.now);
                for i in 0..self.servers[server].held.len() {
                    let (chunk, _) = self.servers[server].held[i];
                    self.replica_restored(chunk as usize);
                }
                self.rejoins += 1;
                Ok(())
            }
            Status::Dead => {
                // Declared dead: its replicas are being rebuilt elsewhere;
                // it rejoins as an empty server.
                self.servers[server].status = Status::Up;
                push_member(&mut self.up, &mut self.up_pos, server);
                push_member(&mut self.alive, &mut self.alive_pos, server);
                self.down_fifo.retain(|&s| s != server);
                self.heartbeats.report(server, 0, self.now);
                self.rejoins += 1;
                Ok(())
            }
        }
    }

    /// Adds a brand-new empty server (round-robin rack assignment).
    fn join(&mut self, capacity: f64) {
        let server = self.servers.len();
        self.servers.push(Node {
            rack: server % self.config.racks,
            capacity: if capacity.is_finite() && capacity > 0.0 {
                capacity
            } else {
                1.0
            },
            status: Status::Up,
            crashed_at: 0,
            held: Vec::new(),
        });
        self.loads.push(0);
        self.heartbeats.push(self.now);
        self.alive_pos.push(usize::MAX);
        self.up_pos.push(usize::MAX);
        push_member(&mut self.alive, &mut self.alive_pos, server);
        push_member(&mut self.up, &mut self.up_pos, server);
        self.joins += 1;
    }

    /// Bookkeeping when a chunk loses one up replica.
    fn replica_lost(&mut self, chunk: usize) {
        let k = self.config.replicas as u32;
        let state = &mut self.chunks[chunk];
        let old = state.live;
        state.live -= 1;
        let new = state.live;
        if old == k {
            self.under_replicated += 1;
            self.note_under_replication();
        }
        if new == 0 {
            self.unavailable += 1;
            self.durability_losses += 1;
        }
    }

    /// Bookkeeping when a chunk regains one up replica.
    fn replica_restored(&mut self, chunk: usize) {
        let k = self.config.replicas as u32;
        let state = &mut self.chunks[chunk];
        let old = state.live;
        state.live += 1;
        if old == 0 {
            self.unavailable -= 1;
        }
        if state.live == k {
            self.under_replicated -= 1;
            if self.under_replicated == 0 {
                self.last_heal_tick = self.now;
            }
        }
    }

    fn note_under_replication(&mut self) {
        self.peak_under_replicated = self.peak_under_replicated.max(self.under_replicated);
        if self.first_under_tick.is_none() {
            self.first_under_tick = Some(self.now);
        }
    }

    /// Drains up to the recovery budget of repair attempts.
    fn drain_recovery<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        if self.queue.is_empty() {
            return;
        }
        let mut ingest = vec![0u32; self.servers.len()];
        let mut queue = std::mem::take(&mut self.queue);
        let now = self.now;
        let recovery = self.config.recovery;
        queue.drain(now, recovery, |repair| {
            self.attempt_repair(repair, &mut ingest, rng)
        });
        self.queue = queue;
    }

    /// One repair attempt: probe a destination through the master's
    /// (stale) view and copy the replica there. Fails — and re-queues
    /// with backoff — when the destination is down, saturated, or no
    /// eligible destination exists.
    fn attempt_repair<R: RngCore + ?Sized>(
        &mut self,
        repair: Repair,
        ingest: &mut [u32],
        rng: &mut R,
    ) -> Result<(), ()> {
        debug_assert_eq!(
            self.chunks[repair.chunk as usize].replicas[repair.slot as usize],
            Replica::Repairing
        );
        self.repair_attempts += 1;
        if repair.attempts > 0 {
            self.repair_retries += 1;
        }
        if self.alive.is_empty() {
            self.failed_no_eligible += 1;
            return Err(());
        }
        let (dest, probes) = self.place_replicas(1, repair.chunk, rng);
        self.recovery_messages += probes.max(1);
        let Some(&server) = dest.first() else {
            self.failed_no_eligible += 1;
            return Err(());
        };
        if self.servers[server].status != Status::Up {
            self.failed_dead_dest += 1;
            return Err(());
        }
        let cap = self.config.recovery.max_ingest_per_tick;
        if cap > 0 && ingest[server] >= cap {
            self.failed_overloaded += 1;
            return Err(());
        }
        ingest[server] += 1;
        self.servers[server].held.push((repair.chunk, repair.slot));
        self.loads[server] += 1;
        self.chunks[repair.chunk as usize].replicas[repair.slot as usize] = Replica::On(server);
        self.recovered_chunks += 1;
        self.replica_restored(repair.chunk as usize);
        Ok(())
    }

    /// The loads (replica counts) of servers the master considers alive.
    pub fn alive_loads(&self) -> Vec<u32> {
        self.alive.iter().map(|&s| self.loads[s]).collect()
    }

    /// Legacy-compatible statistics snapshot (same fields and semantics
    /// as [`crate::StorageCluster::stats`], over the master's alive set).
    pub fn stats(&self) -> StorageStats {
        let loads = self.alive_loads();
        let total: u64 = loads.iter().map(|&l| u64::from(l)).sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        let mean = if loads.is_empty() {
            0.0
        } else {
            total as f64 / loads.len() as f64
        };
        StorageStats {
            alive_servers: self.alive.len(),
            total_chunks: total,
            max_load: max,
            mean_load: mean,
            imbalance: if mean > 0.0 {
                f64::from(max) / mean
            } else {
                1.0
            },
            placement_messages: self.placement_messages,
            read_messages: self.read_messages,
            recovered_chunks: self.recovered_chunks,
            recovery_messages: self.recovery_messages,
        }
    }

    /// The robustness observables accumulated so far.
    pub fn degradation(&self) -> DegradationReport {
        let ticks_to_heal = match self.first_under_tick {
            None => 0,
            Some(first) => {
                if self.under_replicated == 0 {
                    self.last_heal_tick.saturating_sub(first)
                } else {
                    self.now.saturating_sub(first)
                }
            }
        };
        DegradationReport {
            ticks: self.now,
            crashes: self.crashes,
            detections: self.detections,
            rejoins: self.rejoins,
            joins: self.joins,
            detection_latency_mean: if self.detections > 0 {
                self.detection_latency_sum as f64 / self.detections as f64
            } else {
                0.0
            },
            detection_latency_max: self.detection_latency_max,
            peak_under_replicated: self.peak_under_replicated as u64,
            under_replicated_area: self.under_replicated_area,
            ticks_to_heal,
            healed: self.under_replicated == 0,
            durability_losses: self.durability_losses,
            unavailable_area: self.unavailable_area,
            repair_attempts: self.repair_attempts,
            repair_retries: self.repair_retries,
            failed_dead_dest: self.failed_dead_dest,
            failed_overloaded: self.failed_overloaded,
            failed_no_eligible: self.failed_no_eligible,
            failed_writes: self.failed_writes,
            degraded_reads: self.degraded_reads,
            failed_reads: self.failed_reads,
            plan_errors: self.plan_errors,
            peak_recovery_queue: self.queue.peak_len() as u64,
            final_under_replicated: self.under_replicated as u64,
        }
    }

    /// Verifies internal consistency: slot/holder cross-references, live
    /// counts, queue entries matching `Repairing` slots one-to-one,
    /// membership lists, and — under the distinct disciplines — that no
    /// chunk keeps two replicas on one server (or one rack).
    pub fn check_invariants(&self) -> bool {
        // Membership lists vs statuses.
        for (s, node) in self.servers.iter().enumerate() {
            let in_alive = self.alive_pos[s] != usize::MAX;
            let in_up = self.up_pos[s] != usize::MAX;
            let (want_alive, want_up) = match node.status {
                Status::Up => (true, true),
                Status::Crashed => (true, false),
                Status::Dead => (false, false),
            };
            if in_alive != want_alive || in_up != want_up {
                return false;
            }
            if in_alive && self.alive[self.alive_pos[s]] != s {
                return false;
            }
            if in_up && self.up[self.up_pos[s]] != s {
                return false;
            }
            if self.loads[s] as usize != node.held.len() {
                return false;
            }
            if node.status == Status::Dead && !node.held.is_empty() {
                return false;
            }
            for &(chunk, slot) in &node.held {
                if self.chunks[chunk as usize].replicas[slot as usize] != Replica::On(s) {
                    return false;
                }
            }
        }
        // Queue entries <-> Repairing slots, one to one.
        let mut pending: std::collections::HashMap<(u32, u16), usize> =
            std::collections::HashMap::new();
        for repair in self.queue.iter() {
            *pending.entry((repair.chunk, repair.slot)).or_insert(0) += 1;
        }
        let k = self.config.replicas;
        let mut under = 0usize;
        let mut unavailable = 0usize;
        for (id, chunk) in self.chunks.iter().enumerate() {
            if chunk.replicas.len() != k {
                return false;
            }
            let mut live = 0u32;
            let mut on_servers: Vec<usize> = Vec::new();
            for (slot, replica) in chunk.replicas.iter().enumerate() {
                match replica {
                    Replica::On(s) => {
                        if self.servers[*s].status == Status::Up {
                            live += 1;
                        }
                        on_servers.push(*s);
                    }
                    Replica::Repairing => {
                        let key = (id as u32, slot as u16);
                        match pending.get_mut(&key) {
                            Some(n) if *n > 0 => *n -= 1,
                            _ => return false,
                        }
                    }
                }
            }
            if live != chunk.live {
                return false;
            }
            if chunk.live < k as u32 {
                under += 1;
            }
            if chunk.live == 0 {
                unavailable += 1;
            }
            match self.config.discipline {
                ReplicaDiscipline::Multiplicity => {}
                ReplicaDiscipline::DistinctServers => {
                    let mut sorted = on_servers.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    if sorted.len() != on_servers.len() {
                        return false;
                    }
                }
                ReplicaDiscipline::DistinctRacks => {
                    let mut racks: Vec<usize> =
                        on_servers.iter().map(|&s| self.servers[s].rack).collect();
                    racks.sort_unstable();
                    racks.dedup();
                    if racks.len() != on_servers.len() {
                        return false;
                    }
                }
            }
        }
        if pending.values().any(|&n| n != 0) {
            return false;
        }
        under == self.under_replicated && unavailable == self.unavailable
    }
}

/// Swap-removes `s` from a membership list, fixing up positions.
fn remove_member(list: &mut Vec<usize>, pos: &mut [usize], s: usize) {
    let p = pos[s];
    debug_assert_ne!(p, usize::MAX);
    list.swap_remove(p);
    if p < list.len() {
        pos[list[p]] = p;
    }
    pos[s] = usize::MAX;
}

/// Appends `s` to a membership list, recording its position.
fn push_member(list: &mut Vec<usize>, pos: &mut [usize], s: usize) {
    debug_assert_eq!(pos[s], usize::MAX);
    pos[s] = list.len();
    list.push(s);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdchoice_prng::Xoshiro256PlusPlus;

    fn kd(d: usize) -> PlacementPolicy {
        PlacementPolicy::KdChoice { d }
    }

    #[test]
    fn detection_waits_for_the_heartbeat_timeout() {
        let mut config = ClusterConfig::new(8, 2, kd(4));
        config.heartbeat = HeartbeatConfig::new(3, 1);
        let plan = FaultPlan::new().at(7, FaultEvent::Crash { server: 0 });
        let mut cluster = ChunkCluster::new(config, &plan);
        let mut rng = Xoshiro256PlusPlus::from_u64(1);
        for _ in 0..20 {
            cluster.create_chunk(&mut rng).unwrap();
        }
        let mut detected_at = None;
        for _ in 0..30 {
            cluster.tick(&mut rng);
            if detected_at.is_none() && cluster.alive_servers() < 8 {
                detected_at = Some(cluster.now());
            }
            assert!(cluster.check_invariants(), "tick {}", cluster.now());
        }
        // Crash at 7; last heartbeat at 6; deadline 6 + 3*2 = 12, so the
        // master declares death at tick 13.
        assert_eq!(detected_at, Some(13));
        let d = cluster.degradation();
        assert_eq!(d.detections, 1);
        assert_eq!(d.detection_latency_max, 6);
        assert!(d.healed);
    }

    #[test]
    fn bounded_budget_heals_gradually_and_monotonically() {
        let mut config = ClusterConfig::new(16, 3, kd(6));
        config.recovery = RecoveryConfig::budgeted(2);
        let plan = FaultPlan::new().at(5, FaultEvent::CrashRandom);
        let mut cluster = ChunkCluster::new(config, &plan);
        let mut rng = Xoshiro256PlusPlus::from_u64(2);
        for _ in 0..80 {
            cluster.create_chunk(&mut rng).unwrap();
        }
        let mut prev = usize::MAX;
        let mut saw_under = false;
        for _ in 0..300 {
            cluster.tick(&mut rng);
            let now_under = cluster.under_replicated();
            if cluster.now() > 5 {
                assert!(
                    now_under <= prev,
                    "under-replication must shrink monotonically after the storm"
                );
            }
            prev = now_under;
            saw_under |= now_under > 0;
            if cluster.quiescent() && now_under == 0 {
                break;
            }
        }
        assert!(saw_under, "the crash must open an under-replicated window");
        assert_eq!(cluster.under_replicated(), 0);
        let d = cluster.degradation();
        assert!(d.ticks_to_heal >= 2, "budget 2 cannot heal instantly");
        assert!(cluster.check_invariants());
    }

    #[test]
    fn transient_recovery_before_detection_restores_replicas_without_repair() {
        let mut config = ClusterConfig::new(6, 2, kd(4));
        config.heartbeat = HeartbeatConfig::new(4, 2);
        let plan = FaultPlan::new().crash_with_recovery(3, 1, 4);
        let mut cluster = ChunkCluster::new(config, &plan);
        let mut rng = Xoshiro256PlusPlus::from_u64(3);
        for _ in 0..30 {
            cluster.create_chunk(&mut rng).unwrap();
        }
        for _ in 0..30 {
            cluster.tick(&mut rng);
            assert!(cluster.check_invariants());
        }
        let d = cluster.degradation();
        assert_eq!(d.crashes, 1);
        assert_eq!(d.detections, 0, "blip shorter than the timeout");
        assert_eq!(d.rejoins, 1);
        assert_eq!(cluster.stats().recovered_chunks, 0);
        assert_eq!(cluster.under_replicated(), 0);
        assert_eq!(cluster.alive_servers(), 6);
    }

    #[test]
    fn rack_outage_crashes_the_whole_rack() {
        let mut config = ClusterConfig::new(12, 2, kd(6));
        config.racks = 4;
        config.discipline = ReplicaDiscipline::DistinctRacks;
        let plan = FaultPlan::new().at(2, FaultEvent::RackOutage { rack: 1 });
        let mut cluster = ChunkCluster::new(config, &plan);
        let mut rng = Xoshiro256PlusPlus::from_u64(4);
        for _ in 0..40 {
            cluster.create_chunk(&mut rng).unwrap();
        }
        for _ in 0..60 {
            cluster.tick(&mut rng);
            assert!(cluster.check_invariants(), "tick {}", cluster.now());
        }
        let d = cluster.degradation();
        assert_eq!(d.crashes, 3, "rack 1 holds servers 1, 5, 9");
        assert_eq!(d.detections, 3);
        assert!(d.healed);
        assert_eq!(cluster.alive_servers(), 9);
        // No chunk lost both its replicas: distinct racks meant at most
        // one replica per chunk lived in rack 1.
        assert_eq!(d.durability_losses, 0);
        assert_eq!(d.failed_reads, 0);
    }

    #[test]
    fn joins_absorb_load_and_extend_the_cluster() {
        let config = ClusterConfig::new(4, 2, kd(4));
        let plan = FaultPlan::new()
            .at(1, FaultEvent::Join { capacity: 1.0 })
            .at(1, FaultEvent::Join { capacity: 2.0 });
        let mut cluster = ChunkCluster::new(config, &plan);
        let mut rng = Xoshiro256PlusPlus::from_u64(5);
        cluster.tick(&mut rng);
        assert_eq!(cluster.total_servers(), 6);
        assert_eq!(cluster.alive_servers(), 6);
        for _ in 0..120 {
            cluster.create_chunk(&mut rng).unwrap();
        }
        assert!(cluster.check_invariants());
        // The joined servers participate in placement.
        assert!(cluster.alive_loads()[4] > 0);
        assert!(cluster.alive_loads()[5] > 0);
    }

    #[test]
    fn overlapping_fault_targets_degrade_to_plan_errors() {
        let config = ClusterConfig::new(3, 1, PlacementPolicy::Random);
        let plan = FaultPlan::new()
            .at(1, FaultEvent::Crash { server: 0 })
            .at(2, FaultEvent::Crash { server: 0 })
            .at(2, FaultEvent::Recover { server: 2 })
            .at(3, FaultEvent::Crash { server: 99 });
        let mut cluster = ChunkCluster::new(config, &plan);
        let mut rng = Xoshiro256PlusPlus::from_u64(6);
        for _ in 0..5 {
            cluster.tick(&mut rng);
        }
        let d = cluster.degradation();
        assert_eq!(d.crashes, 1);
        assert_eq!(d.plan_errors, 3);
        assert!(cluster.check_invariants());
    }

    #[test]
    fn stale_heartbeat_probes_can_pick_dead_destinations_and_retry() {
        // Period 6 with a long timeout: a crashed server stays in the
        // master's alive view for a while, so recovery placement can pick
        // it and must retry.
        let mut config = ClusterConfig::new(4, 2, kd(8));
        config.heartbeat = HeartbeatConfig::new(6, 3);
        config.recovery = RecoveryConfig::budgeted(4);
        let plan = FaultPlan::new()
            .at(8, FaultEvent::Crash { server: 0 })
            .at(9, FaultEvent::Crash { server: 1 });
        let mut cluster = ChunkCluster::new(config, &plan);
        let mut rng = Xoshiro256PlusPlus::from_u64(7);
        for _ in 0..60 {
            cluster.create_chunk(&mut rng).unwrap();
        }
        for _ in 0..200 {
            cluster.tick(&mut rng);
            assert!(cluster.check_invariants(), "tick {}", cluster.now());
        }
        let d = cluster.degradation();
        assert_eq!(d.detections, 2);
        assert!(d.detection_latency_max >= 6);
        assert!(
            d.healed,
            "under-replicated at end: {}",
            d.final_under_replicated
        );
        assert!(cluster.quiescent());
    }
}
