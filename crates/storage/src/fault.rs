//! Declarative fault injection: a [`FaultPlan`] schedules crashes, rack
//! outages, delayed recoveries, and node joins on the virtual clock, and
//! the [`FaultInjector`] feeds them to [`crate::ChunkCluster::tick`].
//!
//! Events that turn out to be impossible when they fire (crashing an
//! already-down server, recovering an up one) are *recorded*, not fatal:
//! the cluster counts them as plan errors and keeps running, so plans
//! with overlapping targets degrade gracefully.

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Crash a specific server: it stops heartbeating and its replicas
    /// become unreadable; the master notices only after the heartbeat
    /// timeout.
    Crash {
        /// The server to crash.
        server: usize,
    },
    /// Crash a uniformly random currently-up server (consumes one RNG
    /// draw at fire time).
    CrashRandom,
    /// Crash every up server in a rack (a top-of-rack switch failure).
    RackOutage {
        /// The rack to take out.
        rack: usize,
    },
    /// Bring a specific downed server back: a crashed-but-undetected
    /// server returns with its replicas intact (a network blip); a
    /// detected-dead one rejoins empty.
    Recover {
        /// The server to recover.
        server: usize,
    },
    /// Recover the longest-down server, if any (FIFO over crash order) —
    /// lets plans express "crash with delayed recovery" without knowing
    /// random victims in advance.
    RecoverOldest,
    /// Add a brand-new empty server with the given relative capacity,
    /// assigned to the next rack round-robin.
    Join {
        /// Relative capacity of the new server.
        capacity: f64,
    },
}

/// A schedule of fault events on the virtual clock. Events at the same
/// tick fire in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(u64, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `tick` (builder style).
    #[must_use]
    pub fn at(mut self, tick: u64, event: FaultEvent) -> Self {
        self.push(tick, event);
        self
    }

    /// Schedules `event` at `tick`.
    pub fn push(&mut self, tick: u64, event: FaultEvent) {
        self.events.push((tick, event));
    }

    /// Schedules a crash at `tick` and the matching recovery of the
    /// longest-down server `down_ticks` later.
    #[must_use]
    pub fn crash_with_recovery(self, tick: u64, server: usize, down_ticks: u64) -> Self {
        self.at(tick, FaultEvent::Crash { server })
            .at(tick + down_ticks, FaultEvent::Recover { server })
    }

    /// Schedules `count` random crashes spread evenly through ticks
    /// `1..=span` (the classic re-replication storm driver): crash `i`
    /// fires at `(i + 1) * span / (count + 1)`, clamped to at least 1.
    #[must_use]
    pub fn storm(mut self, count: usize, span: u64) -> Self {
        for i in 0..count {
            let tick = ((i as u64 + 1) * span / (count as u64 + 1)).max(1);
            self.push(tick, FaultEvent::CrashRandom);
        }
        self
    }

    /// The number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The last tick any event fires at (0 for an empty plan).
    pub fn last_tick(&self) -> u64 {
        self.events.iter().map(|&(t, _)| t).max().unwrap_or(0)
    }

    /// The scheduled `(tick, event)` pairs in insertion order.
    pub fn events(&self) -> &[(u64, FaultEvent)] {
        &self.events
    }
}

/// Replays a [`FaultPlan`] tick by tick. Events are delivered in
/// schedule order (stable for equal ticks), independent of insertion
/// order across different ticks.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Events sorted by tick (stable, so same-tick order is preserved).
    events: Vec<(u64, FaultEvent)>,
    next: usize,
}

impl FaultInjector {
    /// Builds an injector from a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut events = plan.events.clone();
        events.sort_by_key(|&(t, _)| t);
        Self { events, next: 0 }
    }

    /// All events scheduled at exactly `now`, advancing the cursor.
    /// Events scheduled strictly before `now` that were never polled are
    /// delivered too (late, but never dropped).
    pub fn take_due(&mut self, now: u64) -> &[(u64, FaultEvent)] {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].0 <= now {
            self.next += 1;
        }
        &self.events[start..self.next]
    }

    /// Whether any events remain to fire after `now`.
    pub fn pending(&self) -> bool {
        self.next < self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_delivers_in_tick_order_stable_within_a_tick() {
        let plan = FaultPlan::new()
            .at(5, FaultEvent::CrashRandom)
            .at(2, FaultEvent::Crash { server: 1 })
            .at(5, FaultEvent::Join { capacity: 1.0 })
            .at(2, FaultEvent::Recover { server: 1 });
        let mut injector = FaultInjector::new(&plan);
        assert!(injector.take_due(1).is_empty());
        assert_eq!(
            injector.take_due(2),
            &[
                (2, FaultEvent::Crash { server: 1 }),
                (2, FaultEvent::Recover { server: 1 }),
            ]
        );
        assert!(injector.take_due(3).is_empty());
        assert!(injector.pending());
        assert_eq!(
            injector.take_due(5),
            &[
                (5, FaultEvent::CrashRandom),
                (5, FaultEvent::Join { capacity: 1.0 }),
            ]
        );
        assert!(!injector.pending());
    }

    #[test]
    fn storm_spreads_crashes_evenly() {
        let plan = FaultPlan::new().storm(3, 100);
        let ticks: Vec<u64> = plan.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(ticks, vec![25, 50, 75]);
        assert_eq!(plan.last_tick(), 75);
    }

    #[test]
    fn crash_with_recovery_schedules_both_halves() {
        let plan = FaultPlan::new().crash_with_recovery(10, 3, 40);
        assert_eq!(
            plan.events(),
            &[
                (10, FaultEvent::Crash { server: 3 }),
                (50, FaultEvent::Recover { server: 3 }),
            ]
        );
    }
}
