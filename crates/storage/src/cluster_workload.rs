//! The scripted degradation workload over the fault-injected
//! [`ChunkCluster`]: create chunks on the virtual clock while a
//! [`FaultPlan`] injects failures, drain the recovery backlog, then issue
//! Zipf-popular reads and report both the legacy placement statistics and
//! the robustness observables.

use kdchoice_prng::dist::Zipf;
use kdchoice_prng::Xoshiro256PlusPlus;
use kdchoice_stats::quantile::quantiles;

use crate::chunk_cluster::{ChunkCluster, ClusterConfig, DegradationReport};
use crate::cluster::StorageStats;
use crate::fault::{FaultEvent, FaultPlan};
use crate::workload::WorkloadConfig;

/// Configuration of a fault-injected cluster workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterWorkloadConfig {
    /// The cluster shape: replicas, policy, discipline, heartbeats,
    /// recovery limits.
    pub cluster: ClusterConfig,
    /// Chunks to create (one per tick).
    pub files: usize,
    /// Read operations to issue after the cluster quiesces.
    pub reads: usize,
    /// Zipf exponent for read popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Extra ticks allowed after the create phase for the cluster to
    /// quiesce (detect all crashes and drain the recovery queue).
    pub drain_cap: u64,
    /// Under-replication series sampling period (0 = off).
    pub sample_every: u32,
    /// Master seed.
    pub seed: u64,
}

impl ClusterWorkloadConfig {
    /// A workload over `cluster` with no faults and defaults matching
    /// [`WorkloadConfig::new`] conventions.
    pub fn new(cluster: ClusterConfig) -> Self {
        Self {
            cluster,
            files: cluster.servers * 10,
            reads: cluster.servers * 20,
            zipf_exponent: 0.9,
            plan: FaultPlan::new(),
            drain_cap: 100_000,
            sample_every: 0,
            seed: 0,
        }
    }

    /// The exact fault-injected equivalent of the legacy
    /// [`crate::run_workload`] experiment: multiplicity placement,
    /// synchronous heartbeats, unbounded recovery, and random crashes
    /// scheduled at the legacy failure intervals. Running it reproduces
    /// the legacy RNG stream — and therefore every statistic —
    /// bit-identically.
    pub fn legacy_compat(config: &WorkloadConfig) -> Self {
        let cluster =
            ClusterConfig::legacy_compat(config.servers, config.chunks_per_file, config.policy);
        // Replicate the legacy failure schedule: after creating file `f`
        // (tick `f + 1`), fail a random server when the interval divides;
        // leftovers fire back-to-back after the create phase.
        let mut plan = FaultPlan::new();
        let failure_every = if config.failures > 0 {
            (config.files / (config.failures + 1)).max(1)
        } else {
            usize::MAX
        };
        let mut failures_done = 0usize;
        for f in 0..config.files {
            if failures_done < config.failures && (f + 1) % failure_every == 0 {
                plan.push((f + 1) as u64, FaultEvent::CrashRandom);
                failures_done += 1;
            }
        }
        let mut tick = config.files as u64 + 1;
        while failures_done < config.failures {
            plan.push(tick, FaultEvent::CrashRandom);
            tick += 1;
            failures_done += 1;
        }
        Self {
            cluster,
            files: config.files,
            reads: config.reads,
            zipf_exponent: config.zipf_exponent,
            plan,
            drain_cap: 100_000,
            sample_every: 0,
            seed: config.seed,
        }
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Results of one fault-injected cluster workload run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Policy name.
    pub policy: String,
    /// Legacy-compatible cluster statistics.
    pub stats: StorageStats,
    /// Load percentiles `[p50, p90, p99]` over the master's alive servers.
    pub load_percentiles: [f64; 3],
    /// Mean messages per read operation.
    pub read_cost_per_op: f64,
    /// Mean probe messages per chunk creation.
    pub create_cost_per_file: f64,
    /// Chunk creations refused because no server was alive.
    pub failed_creates: u64,
    /// The robustness observables.
    pub degradation: DegradationReport,
    /// `(tick, under_replicated)` samples (empty when sampling is off).
    pub series: Vec<(u64, u32)>,
}

/// Runs the fault-injected workload: one chunk creation per tick while
/// the plan injects faults, then up to `drain_cap` extra ticks to
/// quiesce, then `reads` Zipf-popular reads.
///
/// # Panics
///
/// Panics on invalid parameters (propagated from [`ChunkCluster`] /
/// [`Zipf`]).
pub fn run_cluster_workload(config: &ClusterWorkloadConfig) -> ClusterReport {
    let mut rng = Xoshiro256PlusPlus::from_u64(config.seed);
    let mut cluster =
        ChunkCluster::new(config.cluster, &config.plan).with_sample_every(config.sample_every);

    // Create phase: one chunk per tick, faults firing in between.
    let mut failed_creates = 0u64;
    for _ in 0..config.files {
        if cluster.create_chunk(&mut rng).is_err() {
            failed_creates += 1;
        }
        cluster.tick(&mut rng);
    }

    // Drain phase: let remaining faults fire, detection conclude, and the
    // bounded-rate recovery queue empty (capped so livelocked repairs
    // still terminate).
    let mut extra = 0u64;
    while !cluster.quiescent() && extra < config.drain_cap {
        cluster.tick(&mut rng);
        extra += 1;
    }

    // Read phase: Zipf-popular chunks.
    if config.files > 0 && config.reads > 0 {
        let zipf = Zipf::new(config.files, config.zipf_exponent).expect("valid zipf");
        for _ in 0..config.reads {
            let chunk = zipf.sample(&mut rng) as u32;
            cluster.read_chunk(chunk);
        }
    }

    let stats = cluster.stats();
    let loads: Vec<f64> = cluster
        .alive_loads()
        .iter()
        .map(|&l| f64::from(l))
        .collect();
    let pct = quantiles(&loads, &[0.5, 0.9, 0.99]);
    let load_percentiles = if pct.len() == 3 {
        [pct[0], pct[1], pct[2]]
    } else {
        [0.0; 3]
    };
    ClusterReport {
        policy: config.cluster.policy.name().into_owned(),
        stats,
        load_percentiles,
        read_cost_per_op: if config.reads > 0 {
            stats.read_messages as f64 / config.reads as f64
        } else {
            0.0
        },
        create_cost_per_file: if config.files > 0 {
            stats.placement_messages as f64 / config.files as f64
        } else {
            0.0
        },
        failed_creates,
        degradation: cluster.degradation(),
        series: cluster.series().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;
    use crate::replication::RecoveryConfig;

    #[test]
    fn cluster_workload_is_deterministic() {
        let mut config = ClusterWorkloadConfig::new(ClusterConfig::new(
            24,
            3,
            PlacementPolicy::KdChoice { d: 6 },
        ));
        config.cluster.recovery = RecoveryConfig::budgeted(2);
        config.plan = FaultPlan::new().storm(3, config.files as u64);
        config.seed = 11;
        let a = run_cluster_workload(&config);
        let b = run_cluster_workload(&config);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.degradation, b.degradation);
        assert_eq!(a.series, b.series);
    }

    #[test]
    fn faultless_run_has_clean_degradation_report() {
        let config = ClusterWorkloadConfig::new(ClusterConfig::new(
            16,
            2,
            PlacementPolicy::KdChoice { d: 4 },
        ))
        .with_seed(3);
        let r = run_cluster_workload(&config);
        assert_eq!(r.degradation.crashes, 0);
        assert_eq!(r.degradation.peak_under_replicated, 0);
        assert_eq!(r.degradation.durability_losses, 0);
        assert!(r.degradation.healed);
        assert_eq!(r.failed_creates, 0);
        assert_eq!(r.stats.total_chunks, (config.files * 2) as u64);
    }

    #[test]
    fn storm_under_finite_budget_heals_within_the_drain_cap() {
        let mut config = ClusterWorkloadConfig::new(ClusterConfig::new(
            32,
            3,
            PlacementPolicy::KdChoice { d: 6 },
        ));
        config.cluster.recovery = RecoveryConfig::budgeted(1);
        config.plan = FaultPlan::new().storm(4, config.files as u64);
        config.seed = 5;
        let r = run_cluster_workload(&config);
        assert_eq!(r.degradation.crashes, 4);
        assert_eq!(r.degradation.detections, 4);
        assert!(r.degradation.peak_under_replicated > 0);
        assert!(r.degradation.healed, "drain cap must suffice");
        assert_eq!(r.degradation.final_under_replicated, 0);
        assert!(r.degradation.ticks_to_heal > 0);
        // Conservation: every chunk is back at full replication, so the
        // alive servers hold exactly files * k replicas.
        assert_eq!(r.stats.total_chunks, (config.files * 3) as u64);
    }
}
