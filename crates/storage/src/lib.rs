//! Distributed storage with (k,d)-choice — the paper's second application
//! (§1.3).
//!
//! > "Suppose that a new file is created and replicated into k copies (or
//! > that a large file is split into k chunks), and each of the replicas (or
//! > chunks) is to be stored on servers. The (k,d)-choice scheme provides a
//! > simple and efficient solution for fast allocation and load balance with
//! > the minimum message cost; k replicas (or chunks) are stored on the k
//! > least loaded out of d servers chosen randomly."
//!
//! This crate simulates a storage cluster: files are created as `k` chunks
//! placed by a pluggable [`PlacementPolicy`]; reads retrieve all `k` chunks
//! (cost `k+1` for directory-based (k,d) placement vs `2k` for per-chunk
//! two-choice, per §1.3); servers can fail, triggering re-replication of
//! their chunks.
//!
//! Two clusters share the placement machinery:
//!
//! - [`StorageCluster`]: the legacy synchronous model — failures are
//!   announced, detection is instant, and recovery heals atomically inside
//!   `fail_server`. See [`run_workload`] for its scripted experiment.
//! - [`ChunkCluster`]: the fault-injected virtual-clock model — silent
//!   crashes, heartbeat-lagged load views, missed-heartbeat death
//!   detection, and bounded-rate re-replication driven by a declarative
//!   [`FaultPlan`]. See [`run_cluster_workload`] for the degradation
//!   experiment and [`ClusterScenario`] for the experiment-framework
//!   binding.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod chunk_cluster;
mod cluster;
mod cluster_workload;
mod fault;
mod heartbeat;
mod placement;
mod replication;
mod scenario;
mod workload;

pub use chunk_cluster::{ChunkCluster, ClusterConfig, DegradationReport, ReplicaDiscipline};
pub use cluster::{ClusterError, StorageCluster, StorageStats};
pub use cluster_workload::{run_cluster_workload, ClusterReport, ClusterWorkloadConfig};
pub use fault::{FaultEvent, FaultInjector, FaultPlan};
pub use heartbeat::{HeartbeatConfig, HeartbeatTable};
pub use placement::PlacementPolicy;
pub use replication::{RecoveryConfig, RecoveryQueue, Repair};
pub use scenario::{ClusterScenario, StorageScenario};
pub use workload::{run_workload, StorageReport, WorkloadConfig};
