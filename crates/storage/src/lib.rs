//! Distributed storage with (k,d)-choice — the paper's second application
//! (§1.3).
//!
//! > "Suppose that a new file is created and replicated into k copies (or
//! > that a large file is split into k chunks), and each of the replicas (or
//! > chunks) is to be stored on servers. The (k,d)-choice scheme provides a
//! > simple and efficient solution for fast allocation and load balance with
//! > the minimum message cost; k replicas (or chunks) are stored on the k
//! > least loaded out of d servers chosen randomly."
//!
//! This crate simulates a storage cluster: files are created as `k` chunks
//! placed by a pluggable [`PlacementPolicy`]; reads retrieve all `k` chunks
//! (cost `k+1` for directory-based (k,d) placement vs `2k` for per-chunk
//! two-choice, per §1.3); servers can fail, triggering re-replication of
//! their chunks. See [`StorageCluster`] for the operations and
//! [`run_workload`] for a scripted create/read/fail experiment.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
mod scenario;
mod workload;

pub use cluster::{PlacementPolicy, StorageCluster, StorageStats};
pub use scenario::StorageScenario;
pub use workload::{run_workload, StorageReport, WorkloadConfig};
