//! Property-based tests of the fault-injected cluster: random fault-plan
//! streams must conserve chunks, never co-locate two replicas of a chunk
//! on one server (or one rack when rack-aware), and — once every server
//! is revived and the recovery queue fully drains — restore every chunk
//! to its full replication factor `k`.

use kdchoice_prng::Xoshiro256PlusPlus;
use kdchoice_storage::{
    ChunkCluster, ClusterConfig, FaultEvent, FaultPlan, HeartbeatConfig, PlacementPolicy,
    RecoveryConfig, ReplicaDiscipline,
};
use proptest::prelude::*;

/// Raw material for one fault event: `(tick, kind, target, down_ticks)`.
type RawEvent = (u64, u8, usize, u64);

fn raw_events() -> impl Strategy<Value = Vec<RawEvent>> {
    prop::collection::vec((1u64..40, 0u8..6, 0usize..24, 1u64..10), 0..10)
}

/// Strictly after every tick a decoded plan can fire at (raw ticks stay
/// below 40 and paired recoveries trail by less than 10).
const REVIVE_TICK: u64 = 60;

/// Decodes the fuzzed raw events into a plan against `servers` servers
/// and `racks` racks. Out-of-range targets are kept deliberately: they
/// must surface as plan errors, never panics.
fn decode_plan(raw: &[RawEvent], servers: usize, racks: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(tick, kind, target, down) in raw {
        match kind {
            0 => plan.push(tick, FaultEvent::Crash { server: target }),
            1 => plan.push(tick, FaultEvent::CrashRandom),
            2 => plan.push(
                tick,
                FaultEvent::RackOutage {
                    rack: target % (racks + 1),
                },
            ),
            3 => {
                plan.push(
                    tick,
                    FaultEvent::Crash {
                        server: target % (servers + 1),
                    },
                );
                plan.push(tick + down, FaultEvent::RecoverOldest);
            }
            4 => plan.push(tick, FaultEvent::Recover { server: target }),
            _ => plan.push(tick, FaultEvent::Join { capacity: 1.0 }),
        }
    }
    plan
}

/// Appends enough `RecoverOldest` events after `after_tick` to revive
/// every server the plan could possibly have downed.
fn revive_all(mut plan: FaultPlan, after_tick: u64, worst_case_down: usize) -> FaultPlan {
    for _ in 0..worst_case_down {
        plan.push(after_tick, FaultEvent::RecoverOldest);
    }
    plan
}

/// Drives `cluster` through the create phase and drains it to
/// quiescence, checking invariants at every tick. Returns the number of
/// chunks successfully created.
fn drive(cluster: &mut ChunkCluster, files: usize, seed: u64) -> usize {
    let mut rng = Xoshiro256PlusPlus::from_u64(seed);
    let mut created = 0usize;
    for _ in 0..files {
        if cluster.create_chunk(&mut rng).is_ok() {
            created += 1;
        }
        cluster.tick(&mut rng);
        assert!(cluster.check_invariants(), "tick {}", cluster.now());
    }
    let mut extra = 0u64;
    while !cluster.quiescent() && extra < 30_000 {
        cluster.tick(&mut rng);
        extra += 1;
        assert!(cluster.check_invariants(), "drain tick {}", cluster.now());
    }
    created
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under arbitrary fault streams, chunk identities are conserved
    /// (every chunk keeps exactly `k` replica slots), the distinct-server
    /// rule is never violated, and no tick panics — even with
    /// out-of-range targets, double crashes, and recoveries of servers
    /// that are up.
    #[test]
    fn random_fault_streams_conserve_chunks_and_distinctness(
        raw in raw_events(),
        servers in 6usize..20,
        k in 1usize..4,
        budget in 0u32..4,
        hb in 0u32..4,
        seed in 0u64..500,
    ) {
        prop_assume!(servers >= k);
        let mut config = ClusterConfig::new(servers, k, PlacementPolicy::KdChoice { d: 2 * k });
        config.heartbeat = HeartbeatConfig::new(hb, 1);
        config.recovery = RecoveryConfig::budgeted(budget);
        let files = 30usize;
        let plan = revive_all(decode_plan(&raw, servers, 1), REVIVE_TICK, raw.len() * servers);
        let mut cluster = ChunkCluster::new(config, &plan);
        let created = drive(&mut cluster, files, seed);
        prop_assert_eq!(cluster.chunks(), created);
        // check_invariants (asserted every tick inside drive) covers the
        // distinct-server rule and the k-slot conservation; re-assert the
        // final state explicitly.
        prop_assert!(cluster.check_invariants());
    }

    /// Rack-aware placement never puts two replicas of a chunk in one
    /// rack, even while rack outages and recoveries churn the membership.
    #[test]
    fn rack_aware_streams_never_colocate_replicas_in_a_rack(
        raw in raw_events(),
        per_rack in 2usize..5,
        k in 2usize..4,
        budget in 0u32..3,
        seed in 0u64..500,
    ) {
        let racks = k + 1;
        let servers = racks * per_rack;
        let mut config = ClusterConfig::new(servers, k, PlacementPolicy::KdChoice { d: 2 * k });
        config.racks = racks;
        config.discipline = ReplicaDiscipline::DistinctRacks;
        config.recovery = RecoveryConfig::budgeted(budget);
        let files = 25usize;
        let plan = revive_all(decode_plan(&raw, servers, racks), REVIVE_TICK, raw.len() * servers);
        let mut cluster = ChunkCluster::new(config, &plan);
        drive(&mut cluster, files, seed);
        prop_assert!(cluster.check_invariants());
    }

    /// Once every server is revived and the queue drains, every chunk is
    /// back at its full replication factor: no under-replicated chunks
    /// remain and the alive servers hold exactly `files * k` replicas.
    #[test]
    fn full_drain_restores_replication_factor_k(
        raw in raw_events(),
        servers in 6usize..20,
        k in 1usize..4,
        budget in 1u32..4,
        seed in 0u64..500,
    ) {
        prop_assume!(servers >= k);
        let mut config = ClusterConfig::new(servers, k, PlacementPolicy::KdChoice { d: 2 * k });
        config.heartbeat = HeartbeatConfig::new(2, 1);
        config.recovery = RecoveryConfig::budgeted(budget);
        let files = 30usize;
        let plan = revive_all(decode_plan(&raw, servers, 1), REVIVE_TICK, raw.len() * servers);
        let mut cluster = ChunkCluster::new(config, &plan);
        let created = drive(&mut cluster, files, seed);
        prop_assert!(cluster.quiescent(), "cluster failed to quiesce");
        prop_assert_eq!(cluster.under_replicated(), 0);
        prop_assert_eq!(cluster.unavailable(), 0);
        prop_assert_eq!(cluster.recovery_backlog(), 0);
        prop_assert_eq!(cluster.stats().total_chunks, (created * k) as u64);
    }
}
