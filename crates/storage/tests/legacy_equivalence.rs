//! The acceptance lock for the fault-injected cluster: configured with a
//! single-failure-style plan (random crashes at the legacy intervals),
//! zero heartbeat lag (synchronous detection), an infinite recovery rate,
//! and the legacy multiplicity placement rule, [`ChunkCluster`] must
//! reproduce the legacy [`run_workload`] RNG stream — and therefore every
//! statistic — bit-identically.

use kdchoice_storage::{
    run_cluster_workload, run_workload, ClusterWorkloadConfig, PlacementPolicy, WorkloadConfig,
};

fn assert_bit_identical(config: &WorkloadConfig) {
    let legacy = run_workload(config);
    let compat = run_cluster_workload(&ClusterWorkloadConfig::legacy_compat(config));
    // StorageStats is PartialEq over every counter, including the message
    // totals that expose the exact probe stream, and the f64 means that
    // expose ordering of floating-point accumulation.
    assert_eq!(legacy.stats, compat.stats, "stats diverged for {config:?}");
    assert_eq!(legacy.load_percentiles, compat.load_percentiles);
    assert_eq!(legacy.read_cost_per_op, compat.read_cost_per_op);
    assert_eq!(legacy.create_cost_per_file, compat.create_cost_per_file);
    assert_eq!(legacy.policy, compat.policy);
    assert_eq!(compat.failed_creates, 0);
    // Synchronous detection + unbounded recovery: every crash is detected
    // in its own tick and healed in the same tick.
    assert_eq!(compat.degradation.crashes, config.failures as u64);
    assert_eq!(compat.degradation.detections, config.failures as u64);
    assert_eq!(compat.degradation.detection_latency_max, 0);
    assert_eq!(compat.degradation.final_under_replicated, 0);
}

#[test]
fn compat_cluster_matches_legacy_workload_without_failures() {
    for seed in [0, 1, 0xDEAD] {
        let config = WorkloadConfig::new(40, 3, PlacementPolicy::KdChoice { d: 6 }).with_seed(seed);
        assert_bit_identical(&config);
    }
}

#[test]
fn compat_cluster_matches_legacy_workload_with_failures_across_policies() {
    for policy in [
        PlacementPolicy::KdChoice { d: 8 },
        PlacementPolicy::PerChunkTwoChoice,
        PlacementPolicy::Random,
    ] {
        for failures in [1, 3, 7] {
            for seed in [2, 2024] {
                let config = WorkloadConfig::new(32, 4, policy)
                    .with_failures(failures)
                    .with_seed(seed);
                assert_bit_identical(&config);
            }
        }
    }
}

#[test]
fn compat_cluster_matches_legacy_when_failures_outnumber_create_intervals() {
    // files < failures forces the legacy trailing-failure loop (crashes
    // with no create in between), which the compat plan must replicate at
    // ticks files+1, files+2, ...
    let mut config = WorkloadConfig::new(16, 2, PlacementPolicy::KdChoice { d: 4 })
        .with_failures(9)
        .with_seed(77);
    config.files = 5;
    config.reads = 40;
    assert_bit_identical(&config);
}

#[test]
fn compat_cluster_matches_legacy_with_zipf_variants() {
    for zipf in [0.0, 0.9, 1.5] {
        let mut config = WorkloadConfig::new(24, 3, PlacementPolicy::KdChoice { d: 6 })
            .with_failures(2)
            .with_seed(5);
        config.zipf_exponent = zipf;
        assert_bit_identical(&config);
    }
}
