//! Seeded deterministic regression for the re-replication storm: a fixed
//! fault plan under a finite recovery budget must reproduce the exact
//! same degradation metrics on every run, and the under-replicated
//! window must shrink monotonically back to zero once the storm ends.

use kdchoice_storage::{
    run_cluster_workload, ClusterConfig, ClusterWorkloadConfig, FaultPlan, HeartbeatConfig,
    PlacementPolicy, RecoveryConfig,
};

/// The pinned storm: 48 servers, k=3 with d=6 probes, heartbeat every 2
/// ticks with 1 tolerated miss, 4 random crashes through the create
/// phase, and a budget of 3 repair attempts per tick.
fn storm_config() -> ClusterWorkloadConfig {
    let mut cluster = ClusterConfig::new(48, 3, PlacementPolicy::KdChoice { d: 6 });
    cluster.heartbeat = HeartbeatConfig::new(2, 1);
    cluster.recovery = RecoveryConfig::budgeted(3);
    let mut config = ClusterWorkloadConfig::new(cluster);
    config.files = 480;
    config.reads = 200;
    config.sample_every = 1;
    config.plan = FaultPlan::new().storm(4, config.files as u64);
    config.with_seed(0x5708)
}

#[test]
fn seeded_storm_metrics_are_pinned() {
    let report = run_cluster_workload(&storm_config());
    let d = &report.degradation;

    // The regression pin: these exact values lock the RNG stream, the
    // tick pipeline ordering, the detection deadline arithmetic, and the
    // budgeted drain. Any behavioral change to the fault/recovery path
    // shows up here even if it stays "valid".
    assert_eq!(d.crashes, 4);
    assert_eq!(d.detections, 4);
    assert_eq!(d.detection_latency_mean, 3.0);
    assert_eq!(d.detection_latency_max, 3);
    assert_eq!(report.stats.recovered_chunks, 65);
    assert_eq!(report.stats.recovery_messages, 390);
    assert_eq!(d.peak_under_replicated, 26);
    assert_eq!(d.peak_recovery_queue, 26);
    assert_eq!(d.ticks_to_heal, 299);
    assert_eq!(d.under_replicated_area, 357);
    assert_eq!(d.repair_attempts, 65);
    // Three creates probed a crashed-but-undetected server through the
    // stale heartbeat view; those writes failed and went through recovery.
    assert_eq!(d.failed_writes, 3);
    assert_eq!(report.stats.total_chunks, 3 * 480);
    assert!(d.healed);
    assert_eq!(d.final_under_replicated, 0);
    assert_eq!(d.durability_losses, 0);
    assert_eq!(d.unavailable_area, 0);

    // Determinism: a second run agrees on everything.
    let again = run_cluster_workload(&storm_config());
    assert_eq!(again.stats, report.stats);
    assert_eq!(&again.degradation, d);
    assert_eq!(again.series, report.series);
}

#[test]
fn under_replication_window_is_nonzero_and_shrinks_to_zero() {
    let report = run_cluster_workload(&storm_config());
    let series = &report.series;
    assert!(!series.is_empty());

    // The storm opens a nonzero under-replicated window...
    let peak = series.iter().map(|&(_, u)| u).max().unwrap();
    assert!(peak > 0, "the storm must cause under-replication");

    // ...and after the last crash the window shrinks monotonically back
    // to zero under the finite budget (no new failures, so recovery only
    // makes progress).
    let last_crash_tick = report
        .series
        .iter()
        .zip(report.series.iter().skip(1))
        .filter(|((_, a), (_, b))| b > a)
        .map(|((t, _), _)| *t)
        .max()
        .unwrap();
    let mut prev = u32::MAX;
    for &(tick, under) in series.iter().filter(|&&(t, _)| t > last_crash_tick) {
        assert!(
            under <= prev,
            "under-replication rose after the storm at tick {tick}: {under} > {prev}"
        );
        prev = under;
    }
    assert_eq!(series.last().unwrap().1, 0, "must fully heal");
}
