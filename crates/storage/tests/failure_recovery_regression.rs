//! Deterministic regression test for storage failure recovery: with a
//! fixed seed, killing servers mid-workload must re-place every lost
//! chunk onto a server that is still alive, conserve the total chunk
//! count, and reproduce the exact same final state on every run.

use kdchoice_prng::Xoshiro256PlusPlus;
use kdchoice_storage::{run_workload, PlacementPolicy, StorageCluster, WorkloadConfig};

#[test]
fn fixed_seed_failures_conserve_chunks_and_avoid_dead_servers() {
    let mut cluster = StorageCluster::new(24, 3, PlacementPolicy::KdChoice { d: 6 });
    let mut rng = Xoshiro256PlusPlus::from_u64(0xFA11);
    for _ in 0..120 {
        cluster.create_file(&mut rng);
    }
    let chunks_before = cluster.stats().total_chunks;
    assert_eq!(chunks_before, 360);

    let mut failed = Vec::new();
    for _ in 0..4 {
        let (server, moved) = cluster.fail_random_server(&mut rng).unwrap();
        failed.push(server);
        assert!(moved > 0, "a loaded server must have had chunks to move");
        // Chunk conservation after every single failure.
        assert_eq!(cluster.stats().total_chunks, chunks_before);
        assert!(cluster.check_invariants());
    }
    assert_eq!(cluster.alive_servers(), 20);

    // Re-placement landed only on alive servers: dead servers hold no
    // chunks, and every alive server's load is consistent with the total.
    let alive_total: u64 = cluster.alive_loads().iter().map(|&l| u64::from(l)).sum();
    assert_eq!(alive_total, chunks_before);
    let stats = cluster.stats();
    assert!(
        stats.recovered_chunks <= stats.recovery_messages,
        "recovery spends at least one message per re-placed chunk"
    );
    assert!(stats.recovered_chunks >= 4, "each failure recovered chunks");
}

#[test]
fn workload_with_failures_is_a_pure_function_of_the_seed() {
    // The regression pin: two runs of the same seeded workload agree on
    // every statistic, so any change to the recovery path that alters
    // behavior is caught even if it stays "valid".
    let config = WorkloadConfig::new(32, 3, PlacementPolicy::KdChoice { d: 6 })
        .with_failures(5)
        .with_seed(2024);
    let a = run_workload(&config);
    let b = run_workload(&config);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.load_percentiles, b.load_percentiles);

    // Structural assertions on the fixed-seed outcome.
    assert_eq!(a.stats.alive_servers, 27);
    assert_eq!(a.stats.total_chunks, (config.files * 3) as u64);
    assert!(a.stats.recovered_chunks > 0);
    assert!(a.stats.recovery_messages >= a.stats.recovered_chunks);
    // Mean load over alive servers must account for every chunk.
    let implied_total = a.stats.mean_load * a.stats.alive_servers as f64;
    assert!((implied_total - a.stats.total_chunks as f64).abs() < 1e-6);
}

#[test]
fn recovery_under_every_policy_keeps_the_directory_alive_only() {
    for policy in [
        PlacementPolicy::KdChoice { d: 4 },
        PlacementPolicy::PerChunkTwoChoice,
        PlacementPolicy::Random,
    ] {
        let config = WorkloadConfig::new(20, 2, policy)
            .with_failures(6)
            .with_seed(99);
        let report = run_workload(&config);
        assert_eq!(report.stats.alive_servers, 14, "{policy}");
        assert_eq!(
            report.stats.total_chunks,
            (config.files * 2) as u64,
            "{policy}: chunks must be conserved across failures"
        );
    }
}
