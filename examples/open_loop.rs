//! Open-loop dynamic traffic: Poisson arrivals, exponential ball
//! lifetimes, a bounded service rate, and the batched placement
//! pipeline — the "heavy traffic from millions of users" regime.
//!
//! Sweeps the offered load λ across the stability boundary and prints
//! queueing latency (in virtual ticks) next to the load observables:
//! below capacity the queue is invisible; at λ = 1.2 the backlog and
//! latency grow without bound while (k,d)-choice keeps the *load* gap
//! flat.
//!
//! ```sh
//! cargo run --release --example open_loop
//! ```

use kdchoice::service::{churn_capacity, run_open_loop, OpenLoopConfig, PipelineMode};

fn main() {
    let n = 1 << 12;
    let (k, d) = (2, 4);
    let mean_lifetime = 32.0;
    let ticks = 1200;
    println!(
        "open-loop (k,d)=({k},{d}) on n={n} bins, exponential lifetimes (mean {mean_lifetime} ticks), {ticks} ticks"
    );
    let capacity = churn_capacity(n, k, mean_lifetime);
    println!("service capacity: {capacity} requests/tick (steady state ≈ λ·n balls)\n");
    println!(
        "{:>5} {:>9} {:>9} {:>11} {:>11} {:>9} {:>7} {:>8}",
        "λ", "committed", "backlog", "p50 (ticks)", "p99 (ticks)", "peak load", "gap", "Mballs/s"
    );
    for lambda in [0.5, 0.9, 0.99, 1.2] {
        let mut config = OpenLoopConfig::at_lambda(n, k, d, lambda, mean_lifetime, ticks, 0xFEED);
        config.mode = PipelineMode::Batched;
        config.sample_every = 4;
        let report = run_open_loop(&config);
        assert!(report.conserved, "open-loop run must conserve balls");
        println!(
            "{:>5} {:>9} {:>9} {:>11.1} {:>11.1} {:>9} {:>7.2} {:>8.2}",
            lambda,
            report.requests_committed,
            report.backlog,
            report.latency_p50,
            report.latency_p99,
            report.peak_max_load,
            report.steady_gap_mean,
            report.balls_per_sec / 1e6,
        );
    }
    println!(
        "\nbelow capacity: zero latency. above: latency/backlog diverge, the load gap does not."
    );
}
