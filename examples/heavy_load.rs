//! The heavily loaded case (Theorem 2): m > n balls into n bins.
//!
//! For d ≥ 2k, the gap between the maximum and the average load stays
//! bounded as m grows — while single choice's gap diverges like
//! √(m/n · ln n). This example sweeps m/n and prints both.
//!
//! ```sh
//! cargo run --release --example heavy_load
//! ```

use kdchoice::baselines::SingleChoice;
use kdchoice::kd::{run_trials, KdChoice, RunConfig};
use kdchoice::theory::bounds::theorem2_gap_band;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 14;
    let trials = 5;
    let (k, d) = (2, 4);
    let band = theorem2_gap_band(k, d, n, 2.0);
    println!("n = {n}, ({k},{d})-choice vs single choice, {trials} trials");
    println!(
        "Theorem 2 gap band for ({k},{d}): [{:.1}, {:.1}]\n",
        band.lo, band.hi
    );
    println!("{:>6} {:>16} {:>16}", "m/n", "(k,d) gap", "single gap");
    for ratio in [1u64, 2, 4, 8, 16, 32, 64] {
        let kd = run_trials(
            move |_| Box::new(KdChoice::new(k, d).expect("valid")),
            &RunConfig::new(n, 3000 + ratio).with_balls(ratio * n as u64),
            trials,
        );
        let sc = run_trials(
            |_| Box::new(SingleChoice::new()),
            &RunConfig::new(n, 4000 + ratio).with_balls(ratio * n as u64),
            trials,
        );
        println!(
            "{:>6} {:>16.2} {:>16.2}",
            ratio,
            kd.mean_gap(),
            sc.mean_gap()
        );
    }
    println!("\n(k,d)-choice: flat gap. single choice: diverging gap.");
    Ok(())
}
