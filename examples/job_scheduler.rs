//! Cluster job scheduling with shared probes (§1.3 of the paper).
//!
//! A job of k parallel tasks finishes when its *last* task does. Per-task
//! d-choice probing degrades as k grows; (k,d)-choice shares one batch of
//! probes across the whole job. This example compares response times at
//! equal or lower message budgets.
//!
//! ```sh
//! cargo run --release --example job_scheduler
//! ```

use kdchoice::scheduler::{simulate, ClusterConfig, PlacementStrategy, ServiceDistribution};

fn main() {
    let workers = 200;
    let k = 8; // tasks per job
    let jobs = 10_000;
    let cfg = ClusterConfig::new(workers, k, jobs, 2024)
        .with_utilization(0.85)
        .with_service(ServiceDistribution::Exponential { mean: 1.0 });

    println!(
        "cluster: {workers} workers, {jobs} jobs x {k} tasks, utilization {:.2}\n",
        cfg.utilization()
    );
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>8} {:>12}",
        "strategy", "mean resp", "p50", "p90", "p99", "probes/job"
    );

    for strategy in [
        PlacementStrategy::Random,
        PlacementStrategy::PerTaskDChoice { d: 2 },
        PlacementStrategy::BatchSampling { probes_per_task: 2 },
        PlacementStrategy::LateBinding { probes_per_task: 2 },
        PlacementStrategy::KdChoice { d: k + 1 },
        PlacementStrategy::KdChoice { d: 2 * k },
    ] {
        let r = simulate(&cfg, strategy);
        println!(
            "{:<22} {:>10.3} {:>8.3} {:>8.3} {:>8.3} {:>12.1}",
            r.strategy,
            r.response.mean(),
            r.response_percentiles[0],
            r.response_percentiles[1],
            r.response_percentiles[2],
            r.probes_per_job,
        );
    }

    println!(
        "\nNote how (k,{kk1})-choice stays close to batch sampling's response \
         time at {kk1} probes/job instead of {kd2} — the §1.3 tradeoff: shared \
         probes buy two-choice-grade tails at roughly half the message cost.",
        kk1 = k + 1,
        kd2 = 2 * k,
    );
}
