//! Explore the (k,d) parameter space: maximum load vs message cost.
//!
//! The paper's headline (§1.1): picking k and d appropriately buys
//! * constant max load at 2 messages/ball (d = 2k, k = polylog n), or
//! * o(lnln n) max load at (1+o(1)) messages/ball (d − k = Θ(ln n)).
//!
//! ```sh
//! cargo run --release --example tradeoff_explorer [n]
//! ```

use kdchoice::kd::{run_trials, KdChoice, RunConfig};
use kdchoice::theory::bounds::theorem1_prediction;
use kdchoice::theory::cost::{constant_load_params, near_minimal_message_params};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1 << 16);
    let trials = 5;
    let lnln = (n as f64).ln().ln();
    println!("n = {n} (lnln n = {lnln:.2}), {trials} trials per point\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "(k,d)", "msgs/ball", "max loads", "mean max", "theory"
    );

    let (kc, dc) = constant_load_params(n);
    let (km, dm) = near_minimal_message_params(n);
    let params: Vec<(usize, usize)> = vec![
        (1, 1),   // single choice
        (1, 2),   // two-choice
        (1, 4),   // four-choice
        (4, 5),   // k ≈ d small
        (16, 17), // k ≈ d medium
        (16, 32), // dk = 2
        (kc, dc), // constant load corner
        (km, dm), // near-minimal messages corner
    ];
    for (k, d) in params {
        let set = run_trials(
            move |_| Box::new(KdChoice::new(k, d).expect("valid")),
            &RunConfig::new(n, 1000 + (k * 7 + d) as u64),
            trials,
        );
        let pred = theorem1_prediction(k, d, n);
        println!(
            "{:<16} {:>10.3} {:>12} {:>12.2} {:>10.2}",
            format!("({k},{d})"),
            d as f64 / k as f64,
            set.max_load_set_string(),
            set.mean_max_load(),
            pred.total(),
        );
    }
    println!("\ntheory column: Theorem 1 point prediction (± O(1) slack applies)");
    Ok(())
}
