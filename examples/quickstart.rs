//! Quickstart: run the (k,d)-choice process and inspect the paper's
//! observables.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kdchoice::kd::{run_once_with_state, run_trials, KdChoice, RunConfig};
use kdchoice::theory::bounds::theorem1_prediction;
use kdchoice::theory::cost::messages_per_ball;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1 << 16;
    let (k, d) = (2, 3);

    // --- One run, full detail -------------------------------------------
    let mut process = KdChoice::new(k, d)?;
    let (result, state) = run_once_with_state(&mut process, &RunConfig::new(n, 42));

    println!("({k},{d})-choice: {n} balls into {n} bins");
    println!("  max load          : {}", result.max_load);
    println!(
        "  messages          : {} ({:.2}/ball)",
        result.messages,
        result.messages_per_ball()
    );
    println!("  rounds            : {}", result.rounds);

    // ν_y: number of bins with load ≥ y (drops doubly exponentially).
    println!("  load distribution (bins with load = l):");
    for (l, &count) in result.load_histogram.iter().enumerate() {
        if count > 0 {
            println!("    l = {l}: {count}");
        }
    }
    // µ_y: number of balls with height ≥ y.
    println!("  mu_2 (balls at height >= 2): {}", result.mu(2));
    println!("  nu_2 (bins with load >= 2) : {}", result.nu(2));
    assert!(result.nu(2) <= result.mu(2), "nu <= mu always (Theorem 3)");

    // The top of the sorted load vector (the paper's B_1, B_2, ...).
    let sorted = state.sorted_descending();
    println!(
        "  top of sorted vector: {:?}",
        &sorted[..8.min(sorted.len())]
    );

    // --- Theory comparison ----------------------------------------------
    let pred = theorem1_prediction(k, d, n);
    println!(
        "\nTheorem 1 prediction: {:.2} (layered {:.2} + dk-term {:.2}, regime {:?})",
        pred.total(),
        pred.layered_term,
        pred.dk_term,
        pred.regime
    );
    println!(
        "message cost model  : {:.2} probes/ball",
        messages_per_ball(k, d)
    );

    // --- Ten trials, Table 1 style --------------------------------------
    let set = run_trials(
        move |_| Box::new(KdChoice::new(k, d).expect("valid")),
        &RunConfig::new(n, 7),
        10,
    );
    println!(
        "\n10 trials: observed max loads = {{{}}}, mean = {:.2}",
        set.max_load_set_string(),
        set.mean_max_load()
    );
    Ok(())
}
