//! Distributed storage with (k,d)-choice chunk placement (§1.3 of the
//! paper), including server failures and re-replication.
//!
//! ```sh
//! cargo run --release --example storage_cluster
//! ```

use kdchoice::prng::Xoshiro256PlusPlus;
use kdchoice::storage::{run_workload, PlacementPolicy, StorageCluster, WorkloadConfig};

fn main() {
    // --- Interactive-style walk-through ---------------------------------
    let mut rng = Xoshiro256PlusPlus::from_u64(99);
    let k = 4;
    let mut cluster = StorageCluster::new(100, k, PlacementPolicy::KdChoice { d: k + 1 });
    println!(
        "creating 500 files of {k} chunks on 100 servers with (k,{})-choice...",
        k + 1
    );
    for _ in 0..500 {
        cluster.create_file(&mut rng);
    }
    let s = cluster.stats();
    println!(
        "  max load {} / mean {:.1} chunks per server (imbalance {:.3})",
        s.max_load, s.mean_load, s.imbalance
    );
    println!(
        "  placement probes per file: {:.1}",
        s.placement_messages as f64 / 500.0
    );
    let cost = cluster.read_file(0);
    println!(
        "  reading one file costs {cost} messages (k+1, vs 2k = {} for per-chunk 2-choice)",
        2 * k
    );

    println!("\nkilling 5 servers...");
    for _ in 0..5 {
        let (server, moved) = cluster
            .fail_random_server(&mut rng)
            .expect("more servers than failures");
        println!("  server {server} died, {moved} chunks re-replicated");
    }
    let s = cluster.stats();
    println!(
        "  after recovery: {} alive, max load {}, imbalance {:.3}",
        s.alive_servers, s.max_load, s.imbalance
    );
    assert!(cluster.check_invariants());

    // --- Policy comparison under a scripted workload --------------------
    println!("\npolicy comparison (1000 servers, 20k files, 10 failures):\n");
    println!(
        "{:<20} {:>8} {:>10} {:>12} {:>12}",
        "policy", "max", "imbalance", "probes/file", "read msgs"
    );
    for policy in [
        PlacementPolicy::Random,
        PlacementPolicy::PerChunkTwoChoice,
        PlacementPolicy::KdChoice { d: k + 1 },
        PlacementPolicy::KdChoice { d: 2 * k },
    ] {
        let mut cfg = WorkloadConfig::new(1000, k, policy)
            .with_seed(7)
            .with_failures(10);
        cfg.files = 20_000;
        cfg.reads = 5_000;
        let r = run_workload(&cfg);
        println!(
            "{:<20} {:>8} {:>10.3} {:>12.1} {:>12.1}",
            r.policy,
            r.stats.max_load,
            r.stats.imbalance,
            r.create_cost_per_file,
            r.read_cost_per_op
        );
    }
}
